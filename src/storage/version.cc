#include "storage/version.h"

#include <algorithm>

#include "common/coding.h"
#include "common/log.h"
#include "storage/filename.h"

namespace lo::storage {
namespace {

enum EditTag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kLastSequence = 3,
  kNewFile = 4,
  kDeletedFile = 5,
};

}  // namespace

// ------------------------------------------------------------ VersionEdit

void VersionEdit::EncodeTo(std::string* dst) const {
  if (log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, *log_number_);
  }
  if (next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, *next_file_number_);
  }
  if (last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, *last_sequence_);
  }
  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, meta] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, meta.number);
    PutVarint64(dst, meta.file_size);
    PutLengthPrefixed(dst, meta.smallest);
    PutLengthPrefixed(dst, meta.largest);
  }
}

Status VersionEdit::DecodeFrom(std::string_view src) {
  Reader reader{src};
  while (!reader.empty()) {
    uint32_t tag = 0;
    if (!reader.GetVarint32(&tag)) return Status::Corruption("bad edit tag");
    uint64_t number = 0;
    uint32_t level = 0;
    switch (tag) {
      case kLogNumber:
        if (!reader.GetVarint64(&number)) return Status::Corruption("bad log number");
        log_number_ = number;
        break;
      case kNextFileNumber:
        if (!reader.GetVarint64(&number)) return Status::Corruption("bad next file");
        next_file_number_ = number;
        break;
      case kLastSequence:
        if (!reader.GetVarint64(&number)) return Status::Corruption("bad last seq");
        last_sequence_ = number;
        break;
      case kDeletedFile:
        if (!reader.GetVarint32(&level) || !reader.GetVarint64(&number)) {
          return Status::Corruption("bad deleted file");
        }
        deleted_files_.emplace_back(static_cast<int>(level), number);
        break;
      case kNewFile: {
        FileMetaData meta;
        std::string_view smallest, largest;
        if (!reader.GetVarint32(&level) || !reader.GetVarint64(&meta.number) ||
            !reader.GetVarint64(&meta.file_size) ||
            !reader.GetLengthPrefixed(&smallest) ||
            !reader.GetLengthPrefixed(&largest)) {
          return Status::Corruption("bad new file");
        }
        meta.smallest.assign(smallest);
        meta.largest.assign(largest);
        new_files_.emplace_back(static_cast<int>(level), std::move(meta));
        break;
      }
      default:
        return Status::Corruption("unknown edit tag");
    }
  }
  return Status::OK();
}

// -------------------------------------------------------------- TableCache

namespace {

std::string TableCacheKey(uint64_t file_number) {
  std::string key;
  key.reserve(8);
  PutFixed64(&key, file_number);
  return key;
}

void DeleteCachedTable(std::string_view, void* value) {
  delete static_cast<std::shared_ptr<Table>*>(value);
}

}  // namespace

TableCache::TableCache(Env* env, std::string dbname, Cache* block_cache,
                       size_t capacity)
    : env_(env),
      dbname_(std::move(dbname)),
      block_cache_(block_cache),
      // One shard: a table open touches the Env anyway, and per-DB open
      // tables are few enough that lock contention is not the issue here.
      cache_(capacity, /*shard_bits=*/0) {}

Result<std::shared_ptr<Table>> TableCache::Get(uint64_t file_number) {
  std::string key = TableCacheKey(file_number);
  if (Cache::Handle* handle = cache_.Lookup(key)) {
    auto table = *static_cast<std::shared_ptr<Table>*>(Cache::Value(handle));
    cache_.Release(handle);
    return table;
  }
  LO_ASSIGN_OR_RETURN(auto file,
                      env_->NewRandomAccessFile(TableFileName(dbname_, file_number)));
  LO_ASSIGN_OR_RETURN(auto table,
                      Table::Open(std::shared_ptr<RandomAccessFile>(std::move(file)),
                                  block_cache_, file_number));
  cache_.Release(cache_.Insert(key, new std::shared_ptr<Table>(table), 1,
                               &DeleteCachedTable));
  return table;
}

void TableCache::Evict(uint64_t file_number) {
  cache_.Erase(TableCacheKey(file_number));
}

// --------------------------------------------------------------- VersionSet

VersionSet::VersionSet(Env* env, std::string dbname, TableCache* table_cache)
    : env_(env), dbname_(std::move(dbname)), table_cache_(table_cache) {}

void VersionSet::Apply(const VersionEdit& edit) {
  if (edit.log_number()) log_number_ = *edit.log_number();
  if (edit.next_file_number()) next_file_number_ = *edit.next_file_number();
  if (edit.last_sequence()) last_sequence_ = *edit.last_sequence();
  for (const auto& [level, number] : edit.deleted_files()) {
    auto& files = files_[level];
    std::erase_if(files, [n = number](const FileMetaData& f) { return f.number == n; });
  }
  for (const auto& [level, meta] : edit.new_files()) {
    LO_CHECK(level >= 0 && level < kNumLevels);
    files_[level].push_back(meta);
  }
  // L0 newest-first (file number descending); deeper levels by key.
  std::sort(files_[0].begin(), files_[0].end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number > b.number;
            });
  for (int level = 1; level < kNumLevels; level++) {
    std::sort(files_[level].begin(), files_[level].end(),
              [this](const FileMetaData& a, const FileMetaData& b) {
                return icmp_.Compare(a.smallest, b.smallest) < 0;
              });
  }
}

Status VersionSet::Recover() {
  LO_ASSIGN_OR_RETURN(std::string current,
                      env_->ReadFileToString(CurrentFileName(dbname_)));
  while (!current.empty() && current.back() == '\n') current.pop_back();
  std::string manifest_path = dbname_ + "/" + current;
  LO_ASSIGN_OR_RETURN(auto file, env_->NewSequentialFile(manifest_path));
  wal::LogReader reader(std::move(file));
  std::string record;
  while (reader.ReadRecord(&record)) {
    VersionEdit edit;
    // A CRC-valid record that does not decode is real corruption (torn
    // writes never pass the checksum), so DecodeFrom errors propagate.
    LO_RETURN_IF_ERROR(edit.DecodeFrom(record));
    Apply(edit);
  }
  if (reader.hit_corruption()) {
    // Torn tail: the crash hit mid-LogAndApply. Every applied edit was
    // synced before being acknowledged, so the prefix is consistent —
    // keep it. The lost edit is re-derived on recovery: the WAL holding
    // its data is only deleted *after* LogAndApply succeeds, so replay
    // regenerates the flush the torn record described.
    torn_manifest_tail_ = true;
  }
  // Reconcile: every table the recovered version references must exist.
  // Tables are synced before the manifest records them, so a missing
  // file cannot be a crash artifact — it is real corruption.
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& meta : files_[level]) {
      if (!env_->FileExists(TableFileName(dbname_, meta.number))) {
        return Status::Corruption("manifest references missing table " +
                                  std::to_string(meta.number));
      }
    }
  }
  uint64_t current_manifest = 0;
  ParseFileName(current, &current_manifest);
  manifest_number_ = std::max(manifest_number_, current_manifest);
  if (next_file_number_ <= manifest_number_) next_file_number_ = manifest_number_ + 1;
  return Status::OK();
}

Status VersionSet::WriteSnapshot() {
  manifest_number_ = next_file_number_++;
  std::string path = ManifestFileName(dbname_, manifest_number_);
  LO_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(path));
  manifest_ = std::make_unique<wal::Writer>(std::move(file));

  VersionEdit snapshot;
  snapshot.SetLogNumber(log_number_);
  snapshot.SetNextFileNumber(next_file_number_);
  snapshot.SetLastSequence(last_sequence_);
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& meta : files_[level]) snapshot.AddFile(level, meta);
  }
  std::string record;
  snapshot.EncodeTo(&record);
  LO_RETURN_IF_ERROR(manifest_->AddRecord(record));
  LO_RETURN_IF_ERROR(manifest_->Sync());

  // Point CURRENT at the new manifest via atomic rename.
  std::string tmp = dbname_ + "/CURRENT.tmp";
  char name[64];
  std::snprintf(name, sizeof(name), "MANIFEST-%06llu\n",
                static_cast<unsigned long long>(manifest_number_));
  LO_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, name, /*sync=*/true));
  return env_->RenameFile(tmp, CurrentFileName(dbname_));
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  edit->SetNextFileNumber(next_file_number_);
  edit->SetLastSequence(last_sequence_);
  LO_CHECK_MSG(manifest_ != nullptr, "VersionSet not initialized");
  std::string record;
  edit->EncodeTo(&record);
  LO_RETURN_IF_ERROR(manifest_->AddRecord(record));
  LO_RETURN_IF_ERROR(manifest_->Sync());
  Apply(*edit);
  return Status::OK();
}

uint64_t VersionSet::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : files_[level]) total += f.file_size;
  return total;
}

uint64_t VersionSet::TotalTableBytes() const {
  uint64_t total = 0;
  for (int level = 0; level < kNumLevels; level++) total += LevelBytes(level);
  return total;
}

std::vector<FileMetaData> VersionSet::OverlappingFiles(int level,
                                                       std::string_view begin,
                                                       std::string_view end) const {
  std::vector<FileMetaData> result;
  for (const auto& f : files_[level]) {
    if (ExtractUserKey(f.largest) < begin || ExtractUserKey(f.smallest) > end) {
      continue;
    }
    result.push_back(f);
  }
  return result;
}

bool VersionSet::IsBaseLevelForKey(int level, std::string_view user_key) const {
  for (int l = level + 1; l < kNumLevels; l++) {
    for (const auto& f : files_[l]) {
      if (user_key >= ExtractUserKey(f.smallest) &&
          user_key <= ExtractUserKey(f.largest)) {
        return false;
      }
    }
  }
  return true;
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  // L1 = 4 MiB, growing 10x per level.
  uint64_t bytes = 4ull << 20;
  for (int l = 1; l < level; l++) bytes *= 10;
  return bytes;
}

void VersionSet::SetL0CompactionTrigger(int files) {
  l0_compaction_trigger_ = std::max(files, 1);
}

double VersionSet::CompactionScore(int level) const {
  if (level == 0) {
    return static_cast<double>(files_[0].size()) /
           static_cast<double>(l0_compaction_trigger_);
  }
  return static_cast<double>(LevelBytes(level)) /
         static_cast<double>(MaxBytesForLevel(level));
}

bool VersionSet::NeedsCompaction() const {
  for (int level = 0; level < kNumLevels - 1; level++) {
    if (CompactionScore(level) >= 1.0) return true;
  }
  return false;
}

VersionSet::CompactionPick VersionSet::PickCompaction() const {
  int best_level = -1;
  double best_score = 1.0;
  for (int level = 0; level < kNumLevels - 1; level++) {
    double score = CompactionScore(level);
    if (score >= best_score) {
      best_score = score;
      best_level = level;
    }
  }
  CompactionPick pick;
  if (best_level < 0) return pick;
  pick.level = best_level;
  if (best_level == 0) {
    // All of L0 participates: files overlap each other.
    pick.inputs = files_[0];
  } else {
    // One file (the first; simple round-robin-free policy).
    pick.inputs = {files_[best_level].front()};
  }
  // Key range of inputs -> overlapping files downstream.
  std::string smallest, largest;
  for (const auto& f : pick.inputs) {
    if (smallest.empty() || icmp_.Compare(f.smallest, smallest) < 0) smallest = f.smallest;
    if (largest.empty() || icmp_.Compare(f.largest, largest) > 0) largest = f.largest;
  }
  pick.next_inputs = OverlappingFiles(best_level + 1, ExtractUserKey(smallest),
                                      ExtractUserKey(largest));
  return pick;
}

std::vector<uint64_t> VersionSet::LiveFiles() const {
  std::vector<uint64_t> live;
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : files_[level]) live.push_back(f.number);
  }
  return live;
}

}  // namespace lo::storage
