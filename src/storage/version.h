// Version management: which SSTables exist at which level, persisted as a
// log of VersionEdits in the MANIFEST. Single-threaded (the simulator
// serializes everything on a node), so there is one live version; open
// iterators stay valid because Tables and MemEnv file contents are
// shared_ptr-owned.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/cache.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace lo::storage {

constexpr int kNumLevels = 5;

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // internal keys
  std::string largest;
};

/// A delta against the current version, logged to the MANIFEST.
class VersionEdit {
 public:
  void SetLogNumber(uint64_t n) { log_number_ = n; }
  void SetNextFileNumber(uint64_t n) { next_file_number_ = n; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }
  void AddFile(int level, FileMetaData meta) {
    new_files_.emplace_back(level, std::move(meta));
  }
  void DeleteFile(int level, uint64_t number) {
    deleted_files_.emplace_back(level, number);
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(std::string_view src);

  const std::optional<uint64_t>& log_number() const { return log_number_; }
  const std::optional<uint64_t>& next_file_number() const { return next_file_number_; }
  const std::optional<SequenceNumber>& last_sequence() const { return last_sequence_; }
  const std::vector<std::pair<int, FileMetaData>>& new_files() const { return new_files_; }
  const std::vector<std::pair<int, uint64_t>>& deleted_files() const { return deleted_files_; }

 private:
  std::optional<uint64_t> log_number_;
  std::optional<uint64_t> next_file_number_;
  std::optional<SequenceNumber> last_sequence_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
  std::vector<std::pair<int, uint64_t>> deleted_files_;
};

/// Opens Tables by file number, memoized on the shared LRU core (hash
/// lookup + handle lifetime instead of the old O(n) vector scan). Each
/// cached Table pins its index/filter blocks for as long as it stays in
/// the cache; open iterators keep their Table alive via shared_ptr even
/// after eviction.
class TableCache {
 public:
  /// `block_cache` (nullable, not owned) is handed to every Table opened
  /// through this cache; tables key their blocks by file number.
  TableCache(Env* env, std::string dbname, Cache* block_cache = nullptr,
             size_t capacity = 64);

  Result<std::shared_ptr<Table>> Get(uint64_t file_number);
  /// Drops the table (compaction-input deletion must call this so dead
  /// files don't pin open file handles and metadata blocks).
  void Evict(uint64_t file_number);

  Cache::Stats GetStats() const { return cache_.GetStats(); }

 private:
  Env* env_;
  std::string dbname_;
  Cache* block_cache_;
  // Key: fixed64 file number. Value: heap shared_ptr<Table>; charge 1 per
  // entry, so `capacity` counts open tables.
  Cache cache_;
};

/// The current file layout plus manifest persistence.
class VersionSet {
 public:
  VersionSet(Env* env, std::string dbname, TableCache* table_cache);

  /// Loads CURRENT + MANIFEST. Returns NotFound if no CURRENT exists
  /// (fresh database).
  Status Recover();
  /// Writes a fresh manifest describing the current state and points
  /// CURRENT at it. Used on create and after recovery.
  Status WriteSnapshot();
  /// Applies the edit in memory and appends it to the manifest (synced).
  Status LogAndApply(VersionEdit* edit);

  /// Lock-free: sub-compaction workers allocate output file numbers
  /// without holding the DB mutex.
  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Guarantees future NewFileNumber() results exceed n (recovery may
  /// find files newer than the last manifest record).
  void EnsureFileNumberAbove(uint64_t n) {
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (cur <= n && !next_file_number_.compare_exchange_weak(
                           cur, n + 1, std::memory_order_relaxed)) {
    }
  }
  uint64_t log_number() const { return log_number_; }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }

  const std::vector<FileMetaData>& files(int level) const { return files_[level]; }
  int NumLevelFiles(int level) const { return static_cast<int>(files_[level].size()); }
  uint64_t LevelBytes(int level) const;
  uint64_t TotalTableBytes() const;

  /// Files in `level` whose user-key range intersects [begin, end].
  std::vector<FileMetaData> OverlappingFiles(int level, std::string_view begin,
                                             std::string_view end) const;

  /// True if no file in levels > `level` can contain user_key (safe to
  /// drop tombstones when compacting into `level`).
  bool IsBaseLevelForKey(int level, std::string_view user_key) const;

  struct CompactionPick {
    int level = -1;  // -1: nothing to do
    std::vector<FileMetaData> inputs;       // from `level`
    std::vector<FileMetaData> next_inputs;  // from `level + 1`
  };
  /// Chooses the most urgent compaction, or level = -1.
  CompactionPick PickCompaction() const;
  bool NeedsCompaction() const;

  /// L0 file count that makes the L0 compaction score reach 1.0. The DB
  /// sets this from Options (sharded memtables flush one file per shard,
  /// so the trigger scales with the shard count).
  void SetL0CompactionTrigger(int files);
  int l0_compaction_trigger() const { return l0_compaction_trigger_; }

  /// All live table numbers (for orphan cleanup on recovery).
  std::vector<uint64_t> LiveFiles() const;

  /// True if the last Recover() discarded a torn manifest tail — the
  /// expected shape of a crash during LogAndApply (the half-appended
  /// record was never synced, so its edit was never acknowledged).
  bool recovered_torn_manifest_tail() const { return torn_manifest_tail_; }

 private:
  void Apply(const VersionEdit& edit);
  double CompactionScore(int level) const;
  uint64_t MaxBytesForLevel(int level) const;

  Env* env_;
  std::string dbname_;
  TableCache* table_cache_;
  InternalKeyComparator icmp_;

  std::vector<FileMetaData> files_[kNumLevels];
  // Atomic so compaction workers can mint file numbers off-mutex; 1 is
  // reserved for the first manifest.
  std::atomic<uint64_t> next_file_number_{2};
  int l0_compaction_trigger_ = 4;
  uint64_t manifest_number_ = 1;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  bool torn_manifest_tail_ = false;
  std::unique_ptr<wal::Writer> manifest_;
};

}  // namespace lo::storage
