#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/log.h"

namespace lo::storage::wal {

Writer::Writer(std::unique_ptr<WritableFile> dest, uint64_t initial_offset)
    : dest_(std::move(dest)), block_offset_(initial_offset % kBlockSize) {}

Status Writer::AddRecord(std::string_view payload) {
  const char* ptr = payload.data();
  size_t left = payload.size();
  bool begin = true;
  do {
    size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Pad the block tail with zeros; readers skip them.
      if (leftover > 0) {
        static const char kZeros[kHeaderSize] = {0};
        LO_RETURN_IF_ERROR(dest_->Append(std::string_view(kZeros, leftover)));
      }
      block_offset_ = 0;
      leftover = kBlockSize;
    }
    size_t avail = leftover - kHeaderSize;
    size_t fragment = std::min(left, avail);
    RecordType type;
    bool end = (fragment == left);
    if (begin && end) {
      type = RecordType::kFull;
    } else if (begin) {
      type = RecordType::kFirst;
    } else if (end) {
      type = RecordType::kLast;
    } else {
      type = RecordType::kMiddle;
    }
    LO_RETURN_IF_ERROR(EmitPhysicalRecord(type, ptr, fragment));
    ptr += fragment;
    left -= fragment;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* data, size_t n) {
  LO_CHECK(n <= 0xffff);
  char header[kHeaderSize];
  // CRC covers type byte + payload so a fragment cannot be retyped.
  char type_byte = static_cast<char>(type);
  uint32_t crc = crc32c::Extend(0, &type_byte, 1);
  crc = crc32c::Extend(crc, data, n);
  crc = crc32c::Mask(crc);
  header[0] = static_cast<char>(crc & 0xff);
  header[1] = static_cast<char>((crc >> 8) & 0xff);
  header[2] = static_cast<char>((crc >> 16) & 0xff);
  header[3] = static_cast<char>((crc >> 24) & 0xff);
  header[4] = static_cast<char>(n & 0xff);
  header[5] = static_cast<char>((n >> 8) & 0xff);
  header[6] = type_byte;
  LO_RETURN_IF_ERROR(dest_->Append(std::string_view(header, kHeaderSize)));
  LO_RETURN_IF_ERROR(dest_->Append(std::string_view(data, n)));
  block_offset_ += kHeaderSize + n;
  return Status::OK();
}

LogReader::LogReader(std::unique_ptr<SequentialFile> src) : src_(std::move(src)) {}

bool LogReader::RefillBuffer() {
  if (eof_) return false;
  buffer_.clear();
  buffer_pos_ = 0;
  Status s = src_->Read(kBlockSize, &buffer_);
  if (!s.ok() || buffer_.empty()) {
    eof_ = true;
    return false;
  }
  if (buffer_.size() < kBlockSize) eof_ = true;  // last (partial) block
  return true;
}

bool LogReader::ReadPhysicalRecord(RecordType* type, std::string* fragment) {
  for (;;) {
    if (buffer_.size() - buffer_pos_ < kHeaderSize) {
      // Rest of block is padding (or a torn header at EOF).
      if (!RefillBuffer()) return false;
      continue;
    }
    const char* header = buffer_.data() + buffer_pos_;
    uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
    size_t length = static_cast<uint8_t>(header[4]) |
                    (static_cast<size_t>(static_cast<uint8_t>(header[5])) << 8);
    auto record_type = static_cast<RecordType>(header[6]);
    if (record_type == RecordType::kZero && length == 0) {
      // Block-tail padding; move to next block.
      buffer_pos_ = buffer_.size();
      continue;
    }
    if (buffer_.size() - buffer_pos_ - kHeaderSize < length) {
      // Torn write at the end of the log.
      hit_corruption_ = true;
      return false;
    }
    const char* data = header + kHeaderSize;
    uint32_t actual_crc = crc32c::Extend(0, header + 6, 1);
    actual_crc = crc32c::Extend(actual_crc, data, length);
    if (actual_crc != expected_crc) {
      hit_corruption_ = true;
      return false;
    }
    buffer_pos_ += kHeaderSize + length;
    *type = record_type;
    fragment->assign(data, length);
    return true;
  }
}

bool LogReader::ReadRecord(std::string* record) {
  record->clear();
  std::string fragment;
  bool in_record = false;
  RecordType type;
  while (ReadPhysicalRecord(&type, &fragment)) {
    switch (type) {
      case RecordType::kFull:
        if (in_record) {
          hit_corruption_ = true;
          return false;
        }
        *record = std::move(fragment);
        return true;
      case RecordType::kFirst:
        if (in_record) {
          hit_corruption_ = true;
          return false;
        }
        *record = std::move(fragment);
        in_record = true;
        break;
      case RecordType::kMiddle:
        if (!in_record) {
          hit_corruption_ = true;
          return false;
        }
        record->append(fragment);
        break;
      case RecordType::kLast:
        if (!in_record) {
          hit_corruption_ = true;
          return false;
        }
        record->append(fragment);
        return true;
      case RecordType::kZero:
        hit_corruption_ = true;
        return false;
    }
  }
  return false;
}

}  // namespace lo::storage::wal
