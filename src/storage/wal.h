// Write-ahead log, LevelDB record format.
//
// The log is a sequence of 32 KiB blocks. Each record fragment carries a
// CRC32C so torn writes and corruption are detected on replay; a record
// larger than a block is split into FIRST/MIDDLE/LAST fragments. The
// same format stores the MANIFEST (version-edit log).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/env.h"

namespace lo::storage::wal {

constexpr size_t kBlockSize = 32768;
// Fragment header: checksum(4) + length(2) + type(1).
constexpr size_t kHeaderSize = 7;

enum class RecordType : uint8_t {
  kZero = 0,  // preallocated/padding
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};

class Writer {
 public:
  /// Takes ownership of `dest` (positioned at file start or end-of-log).
  explicit Writer(std::unique_ptr<WritableFile> dest, uint64_t initial_offset = 0);

  /// Appends one record; returns after the bytes are buffered.
  Status AddRecord(std::string_view payload);
  /// Durability barrier.
  Status Sync() { return dest_->Sync(); }
  Status Close() { return dest_->Close(); }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* data, size_t n);

  std::unique_ptr<WritableFile> dest_;
  size_t block_offset_;
};

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> src);

  /// Reads the next complete record into *record. Returns false at clean
  /// EOF. A corrupt or torn tail also returns false but sets
  /// corruption-detected (the DB treats a torn tail as the crash point).
  bool ReadRecord(std::string* record);

  bool hit_corruption() const { return hit_corruption_; }

 private:
  /// Returns fragment type or nullopt at EOF/corruption.
  bool ReadPhysicalRecord(RecordType* type, std::string* fragment);
  bool RefillBuffer();

  std::unique_ptr<SequentialFile> src_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  bool hit_corruption_ = false;
};

}  // namespace lo::storage::wal
