#include "storage/write_batch.h"

#include "common/coding.h"
#include "common/log.h"
#include "storage/memtable.h"

namespace lo::storage {
namespace {

constexpr char kTypeValue = static_cast<char>(ValueType::kValue);
constexpr char kTypeDeletion = static_cast<char>(ValueType::kDeletion);

}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() { rep_.assign(kHeaderSize, '\0'); }

void WriteBatch::Put(std::string_view key, std::string_view value) {
  rep_.push_back(kTypeValue);
  PutLengthPrefixed(&rep_, key);
  PutLengthPrefixed(&rep_, value);
  uint32_t count = Count() + 1;
  char* p = rep_.data() + 8;
  for (int i = 0; i < 4; i++) p[i] = static_cast<char>((count >> (8 * i)) & 0xff);
}

void WriteBatch::Delete(std::string_view key) {
  rep_.push_back(kTypeDeletion);
  PutLengthPrefixed(&rep_, key);
  uint32_t count = Count() + 1;
  char* p = rep_.data() + 8;
  for (int i = 0; i < 4; i++) p[i] = static_cast<char>((count >> (8 * i)) & 0xff);
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

SequenceNumber WriteBatch::sequence() const { return DecodeFixed64(rep_.data()); }

void WriteBatch::SetSequence(SequenceNumber seq) {
  char* p = rep_.data();
  for (int i = 0; i < 8; i++) p[i] = static_cast<char>((seq >> (8 * i)) & 0xff);
}

Result<WriteBatch> WriteBatch::FromRep(std::string rep) {
  if (rep.size() < kHeaderSize) return Status::Corruption("batch header too small");
  WriteBatch batch;
  batch.rep_ = std::move(rep);
  // Validate structure eagerly so replicas reject corrupt batches.
  struct Counter : Handler {
    void Put(std::string_view, std::string_view) override { n++; }
    void Delete(std::string_view) override { n++; }
    uint32_t n = 0;
  } counter;
  LO_RETURN_IF_ERROR(batch.Iterate(&counter));
  if (counter.n != batch.Count()) return Status::Corruption("batch count mismatch");
  return batch;
}

Status WriteBatch::Iterate(Handler* handler) const {
  Reader reader{std::string_view(rep_).substr(kHeaderSize)};
  while (!reader.empty()) {
    std::string_view type_byte;
    if (!reader.GetBytes(1, &type_byte)) return Status::Corruption("bad batch record");
    std::string_view key, value;
    switch (type_byte[0]) {
      case kTypeValue:
        if (!reader.GetLengthPrefixed(&key) || !reader.GetLengthPrefixed(&value)) {
          return Status::Corruption("bad batch put");
        }
        handler->Put(key, value);
        break;
      case kTypeDeletion:
        if (!reader.GetLengthPrefixed(&key)) {
          return Status::Corruption("bad batch delete");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown batch record type");
    }
  }
  return Status::OK();
}

Status WriteBatch::InsertInto(SequenceNumber base_seq, MemTable* mem) const {
  struct Inserter : Handler {
    SequenceNumber seq;
    MemTable* mem;
    void Put(std::string_view key, std::string_view value) override {
      mem->Add(seq++, ValueType::kValue, key, value);
    }
    void Delete(std::string_view key) override {
      mem->Add(seq++, ValueType::kDeletion, key, {});
    }
  } inserter;
  inserter.seq = base_seq;
  inserter.mem = mem;
  return Iterate(&inserter);
}

Status WriteBatch::InsertInto(SequenceNumber base_seq, ShardedMemTable* mem) const {
  struct Inserter : Handler {
    SequenceNumber seq;
    ShardedMemTable* mem;
    void Put(std::string_view key, std::string_view value) override {
      mem->Add(seq++, ValueType::kValue, key, value);
    }
    void Delete(std::string_view key) override {
      mem->Add(seq++, ValueType::kDeletion, key, {});
    }
  } inserter;
  inserter.seq = base_seq;
  inserter.mem = mem;
  return Iterate(&inserter);
}

void WriteBatch::Append(const WriteBatch& other) {
  uint32_t count = Count() + other.Count();
  rep_.append(other.rep_, kHeaderSize, other.rep_.size() - kHeaderSize);
  char* p = rep_.data() + 8;
  for (int i = 0; i < 4; i++) p[i] = static_cast<char>((count >> (8 * i)) & 0xff);
}

}  // namespace lo::storage
