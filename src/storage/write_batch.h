// Atomic group of mutations. One invocation's writes become exactly one
// WriteBatch: it hits the WAL as a single record and the memtable under
// one sequence range, which is what makes LambdaObjects invocations
// atomic (paper §3.1 guarantee 1).
//
// Wire format:  fixed64 base_seq | fixed32 count | record*
//   record:     type(1) | key lp | [value lp]
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/dbformat.h"

namespace lo::storage {

class MemTable;
class ShardedMemTable;

class WriteBatch {
 public:
  WriteBatch();

  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Clear();

  uint32_t Count() const;
  size_t ByteSize() const { return rep_.size(); }

  /// Serialized representation (WAL record payload).
  const std::string& rep() const { return rep_; }
  /// Adopts a serialized representation (replica applying a shipped batch).
  static Result<WriteBatch> FromRep(std::string rep);

  /// Applies all records to mem with sequence numbers base_seq, base_seq+1...
  Status InsertInto(SequenceNumber base_seq, MemTable* mem) const;
  /// Same, routing each record to its memtable shard by user-key hash.
  Status InsertInto(SequenceNumber base_seq, ShardedMemTable* mem) const;

  /// Visitor used by InsertInto and by replication tests.
  struct Handler {
    virtual ~Handler() = default;
    virtual void Put(std::string_view key, std::string_view value) = 0;
    virtual void Delete(std::string_view key) = 0;
  };
  Status Iterate(Handler* handler) const;

  /// The base sequence stamped by the DB at commit time.
  SequenceNumber sequence() const;
  void SetSequence(SequenceNumber seq);

  /// Appends all of `other`'s records to this batch (group commit).
  void Append(const WriteBatch& other);

 private:
  static constexpr size_t kHeaderSize = 12;
  std::string rep_;
};

}  // namespace lo::storage
