#include "tenant/tenant.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace lo::tenant {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Splits `s` on `sep`, skipping empty pieces (trailing ';' is fine).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

Result<std::map<TenantId, TenantConfig>> ParseTenantSpec(
    const std::string& spec) {
  std::map<TenantId, TenantConfig> configs;
  for (const std::string& entry : Split(spec, ';')) {
    size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("tenant spec entry missing '<id>:': " +
                                     entry);
    }
    char* end = nullptr;
    unsigned long id = std::strtoul(entry.c_str(), &end, 10);
    if (end != entry.c_str() + colon) {
      return Status::InvalidArgument("bad tenant id in spec: " + entry);
    }
    if (id == 0) {
      return Status::InvalidArgument(
          "tenant id 0 is reserved for unattributed traffic: " + entry);
    }
    TenantConfig config;
    for (const std::string& kv : Split(entry.substr(colon + 1), ',')) {
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("tenant spec key missing '=': " + kv);
      }
      std::string key = kv.substr(0, eq);
      std::string value = kv.substr(eq + 1);
      char* vend = nullptr;
      double num = std::strtod(value.c_str(), &vend);
      if (vend != value.c_str() + value.size() || value.empty() || num < 0) {
        return Status::InvalidArgument("bad tenant spec value: " + kv);
      }
      if (key == "weight") {
        config.weight = std::max<uint32_t>(1, static_cast<uint32_t>(num));
      } else if (key == "rate") {
        config.rate_per_sec = num;
      } else if (key == "burst") {
        config.burst = num;
      } else if (key == "fuel") {
        config.fuel_per_window = static_cast<uint64_t>(num);
      } else if (key == "inflight") {
        config.max_inflight = static_cast<uint32_t>(num);
      } else {
        return Status::InvalidArgument("unknown tenant spec key: " + key);
      }
    }
    configs[static_cast<TenantId>(id)] = config;
  }
  return configs;
}

TenantRegistry::TenantRegistry() : TenantRegistry(Options()) {}

TenantRegistry::TenantRegistry(Options options) : options_(std::move(options)) {
  if (!options_.clock) options_.clock = SteadyNowUs;
  if (options_.window_ms <= 0) options_.window_ms = 1000;
}

TenantRegistry::State* TenantRegistry::StateFor(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    it = tenants_.emplace(id, std::make_unique<State>()).first;
    it->second->last_refill_us = options_.clock();
    it->second->window_start_us = it->second->last_refill_us;
  }
  return it->second.get();
}

void TenantRegistry::Configure(TenantId id, TenantConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = StateFor(id);
  s->config = config;
  s->configured = true;
  // Start with a full bucket so a freshly configured tenant gets its burst.
  double burst = config.burst > 0 ? config.burst
                                  : std::max(config.rate_per_sec, 1.0);
  s->tokens = burst;
  s->last_refill_us = options_.clock();
}

void TenantRegistry::ConfigureAll(
    const std::map<TenantId, TenantConfig>& configs) {
  for (const auto& [id, config] : configs) Configure(id, config);
}

void TenantRegistry::RollWindow(State* s, int64_t now) {
  int64_t window_us = options_.window_ms * 1000;
  if (now - s->window_start_us >= window_us) {
    // Snap to the current window boundary so idle gaps don't accumulate
    // budget: each window grants exactly fuel_per_window.
    s->window_start_us = now - (now - s->window_start_us) % window_us;
    s->window_fuel = 0;
  }
}

Status TenantRegistry::Admit(TenantId id) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = StateFor(id);
  if (!s->configured) {  // tenant 0 / unknown tenants: count, never shed
    s->admitted.fetch_add(1, std::memory_order_relaxed);
    s->inflight++;
    return Status::OK();
  }
  int64_t now = options_.clock();
  const TenantConfig& c = s->config;
  if (c.max_inflight > 0 && s->inflight >= c.max_inflight) {
    s->shed.fetch_add(1, std::memory_order_relaxed);
    return Status::TenantThrottled("tenant " + std::to_string(id) +
                                   " at max in-flight");
  }
  if (c.rate_per_sec > 0) {
    double burst = c.burst > 0 ? c.burst : std::max(c.rate_per_sec, 1.0);
    double elapsed_s = static_cast<double>(now - s->last_refill_us) / 1e6;
    if (elapsed_s > 0) {
      s->tokens = std::min(burst, s->tokens + elapsed_s * c.rate_per_sec);
      s->last_refill_us = now;
    }
    if (s->tokens < 1.0) {
      s->shed.fetch_add(1, std::memory_order_relaxed);
      return Status::TenantThrottled("tenant " + std::to_string(id) +
                                     " over rate budget");
    }
    s->tokens -= 1.0;
  }
  if (c.fuel_per_window > 0) {
    RollWindow(s, now);
    if (s->window_fuel >= c.fuel_per_window) {
      s->shed.fetch_add(1, std::memory_order_relaxed);
      return Status::TenantThrottled("tenant " + std::to_string(id) +
                                     " fuel window exhausted");
    }
  }
  s->admitted.fetch_add(1, std::memory_order_relaxed);
  s->inflight++;
  return Status::OK();
}

void TenantRegistry::Release(TenantId id) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = StateFor(id);
  if (s->inflight > 0) s->inflight--;
}

Status TenantRegistry::ChargeFuel(TenantId id, uint64_t amount) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = StateFor(id);
  s->fuel_used.fetch_add(amount, std::memory_order_relaxed);
  if (!s->configured || s->config.fuel_per_window == 0) return Status::OK();
  RollWindow(s, options_.clock());
  s->window_fuel += amount;
  if (s->window_fuel > s->config.fuel_per_window) {
    return Status::TenantThrottled("tenant " + std::to_string(id) +
                                   " fuel window exhausted mid-invocation");
  }
  return Status::OK();
}

uint32_t TenantRegistry::WeightFor(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end() || !it->second->configured) return 1;
  return std::max<uint32_t>(1, it->second->config.weight);
}

void TenantRegistry::RecordQueueWait(TenantId id, int64_t wait_us) {
  std::lock_guard<std::mutex> lock(mu_);
  StateFor(id)->queue_us.Record(wait_us);
}

void TenantRegistry::RegisterMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  // Snapshot the stable State pointers first: registering while holding
  // mu_ could deadlock against a concurrent Snapshot whose callbacks
  // take mu_ under the registry's own lock.
  std::vector<std::pair<TenantId, State*>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : tenants_) states.emplace_back(id, state.get());
  }
  for (auto& [id, s] : states) {
    registry->RegisterCallback("tenant.admitted", id, [s] {
      return static_cast<double>(s->admitted.load(std::memory_order_relaxed));
    });
    registry->RegisterCallback("tenant.shed", id, [s] {
      return static_cast<double>(s->shed.load(std::memory_order_relaxed));
    });
    registry->RegisterCallback("tenant.fuel_used", id, [s] {
      return static_cast<double>(s->fuel_used.load(std::memory_order_relaxed));
    });
    registry->RegisterCallback("tenant.queue_us_p50", id, [this, s] {
      std::lock_guard<std::mutex> l(mu_);
      return static_cast<double>(s->queue_us.Percentile(0.5));
    });
    registry->RegisterCallback("tenant.queue_us_p99", id, [this, s] {
      std::lock_guard<std::mutex> l(mu_);
      return static_cast<double>(s->queue_us.Percentile(0.99));
    });
  }
}

uint64_t TenantRegistry::admitted(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end()
             ? 0
             : it->second->admitted.load(std::memory_order_relaxed);
}

uint64_t TenantRegistry::shed(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end()
             ? 0
             : it->second->shed.load(std::memory_order_relaxed);
}

uint64_t TenantRegistry::fuel_used(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end()
             ? 0
             : it->second->fuel_used.load(std::memory_order_relaxed);
}

uint32_t TenantRegistry::inflight(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second->inflight;
}

int64_t TenantRegistry::QueuePercentile(TenantId id, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second->queue_us.Percentile(q);
}

std::vector<TenantId> TenantRegistry::KnownTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, _] : tenants_) ids.push_back(id);
  return ids;
}

void FairQueue::Push(std::function<void()> job, TenantId tenant,
                     uint32_t weight, int64_t enqueued_us) {
  SubQueue& q = queues_[tenant];
  q.weight = std::max<uint32_t>(1, weight);
  q.items.push_back(Item{std::move(job), tenant, enqueued_us});
  if (!q.active) {
    q.active = true;
    rotation_.push_back(tenant);
  }
  size_++;
}

bool FairQueue::Pop(Item* out) {
  while (!rotation_.empty()) {
    TenantId tenant = rotation_.front();
    SubQueue& q = queues_[tenant];
    if (q.items.empty()) {
      // Drained since its last turn; drop from rotation.
      q.active = false;
      q.credits = 0;
      rotation_.pop_front();
      continue;
    }
    if (q.credits == 0) q.credits = q.weight;
    *out = std::move(q.items.front());
    q.items.pop_front();
    q.credits--;
    size_--;
    if (q.credits == 0 || q.items.empty()) {
      // Turn over: move to the back of the rotation (or leave it if
      // empty — the empty check above removes it lazily).
      q.credits = 0;
      rotation_.pop_front();
      if (!q.items.empty()) {
        rotation_.push_back(tenant);
      } else {
        q.active = false;
      }
    }
    return true;
  }
  return false;
}

}  // namespace lo::tenant
