// Multi-tenant QoS: per-tenant admission control, fair-share scheduling
// and fuel budgeting for shared LambdaObjects nodes (ROADMAP 4(d)).
//
// A TenantId rides in the RPC request frame (net/frame.h, trailing
// optional varint; 0 = unattributed legacy traffic). Each serving node
// holds one TenantRegistry:
//
//   * token-bucket admission (rate + burst) — requests arriving over
//     budget are shed with Status::TenantThrottled before touching a
//     lane, so the client's dedicated throttle backoff (not the fault
//     retry budget) absorbs them;
//   * an in-flight cap per tenant;
//   * a windowed fuel budget debited by the LambdaVM interpreter via
//     VmLimits::fuel_tap, so a long-running invocation is charged
//     against its tenant mid-flight and trapped once the window is dry;
//   * DRR weights consumed by FairQueue (the per-lane scheduler) so one
//     tenant's queue depth cannot monopolize a lane.
//
// FairQueue is the deficit-round-robin sub-queue structure that replaces
// the FIFO `std::deque` in runtime::ParallelNode lanes. It is NOT
// thread-safe: callers hold the lane mutex, exactly as with the deque it
// replaces. With only tenant 0 active it degenerates to exact FIFO, so
// single-tenant behavior (and per-object ordering proofs) are unchanged.
//
// See docs/tenancy.md for the model and knob table.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace lo::obs {
class MetricsRegistry;
}  // namespace lo::obs

namespace lo::tenant {

using TenantId = uint32_t;

/// Per-tenant QoS contract. Zero means "unlimited" for every limit.
struct TenantConfig {
  uint32_t weight = 1;           // DRR share relative to other tenants
  double rate_per_sec = 0;       // token-bucket refill; 0 = no rate limit
  double burst = 0;              // bucket capacity; 0 = max(rate, 1)
  uint64_t fuel_per_window = 0;  // VM fuel budget per window; 0 = unlimited
  uint32_t max_inflight = 0;     // concurrent admitted requests; 0 = unlimited
};

/// Parses the LO_TENANTS / --tenants spec:
///   "1:weight=4,rate=2000,burst=200,fuel=5000000,inflight=64;2:weight=1"
/// Tenant entries are ';'-separated, keys ','-separated. Unknown keys and
/// malformed entries are errors (a silently-dropped limit is a QoS hole).
Result<std::map<TenantId, TenantConfig>> ParseTenantSpec(const std::string& spec);

/// Thread-safe per-node registry of tenant budgets and counters.
class TenantRegistry {
 public:
  struct Options {
    int64_t window_ms = 1000;          // fuel-budget window length
    std::function<int64_t()> clock;    // µs, monotonic; default steady_clock
  };

  TenantRegistry();
  explicit TenantRegistry(Options options);

  /// Installs (or replaces) a tenant's contract.
  void Configure(TenantId id, TenantConfig config);
  /// Bulk Configure from a parsed spec.
  void ConfigureAll(const std::map<TenantId, TenantConfig>& configs);

  /// Admission gate, called once per request before it is enqueued.
  /// OK → the caller MUST pair with Release(id). TenantThrottled → the
  /// request was shed (rate, in-flight, or fuel window exceeded) and
  /// must not run. Tenant 0 and unconfigured tenants always admit.
  Status Admit(TenantId id);
  /// Ends an admitted request (decrements in-flight).
  void Release(TenantId id);

  /// Debits `amount` fuel from the tenant's current window. Returns
  /// TenantThrottled once the window is exhausted (the VM surfaces it
  /// as the invocation's trap status). Always records the spend.
  Status ChargeFuel(TenantId id, uint64_t amount);

  /// DRR weight for FairQueue (>= 1; 1 for unconfigured tenants).
  uint32_t WeightFor(TenantId id) const;

  /// Records time a request spent queued behind a lane (µs).
  void RecordQueueWait(TenantId id, int64_t wait_us);

  /// Exports tenant.admitted/shed/fuel_used/queue_us_{p50,p99} per
  /// tenant (metric node = tenant id) via snapshot-time callbacks.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  // Counter reads for tests and the tenancy bench.
  uint64_t admitted(TenantId id) const;
  uint64_t shed(TenantId id) const;
  uint64_t fuel_used(TenantId id) const;
  uint32_t inflight(TenantId id) const;
  /// Queue-wait percentile over everything recorded so far (µs).
  int64_t QueuePercentile(TenantId id, double q) const;
  std::vector<TenantId> KnownTenants() const;

 private:
  struct State {
    TenantConfig config;
    bool configured = false;
    // Guarded by mu_:
    double tokens = 0;
    int64_t last_refill_us = 0;
    uint64_t window_fuel = 0;      // fuel spent in the current window
    int64_t window_start_us = 0;
    uint32_t inflight = 0;
    Histogram queue_us;
    // Monotonic counters; atomics so obs snapshot callbacks and the
    // bench can read them while worker threads bump them.
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> fuel_used{0};
  };

  State* StateFor(TenantId id);            // creates on first use; holds mu_
  void RollWindow(State* s, int64_t now);  // holds mu_

  Options options_;
  mutable std::mutex mu_;
  std::map<TenantId, std::unique_ptr<State>> tenants_;
};

/// Deficit-round-robin multi-queue drop-in for a lane's FIFO deque.
/// Externally synchronized (callers hold the lane mutex). Weights come
/// from the registry at Push time; unit job cost (every job costs one
/// credit), so a tenant with weight w runs w jobs per round.
class FairQueue {
 public:
  struct Item {
    std::function<void()> job;
    TenantId tenant = 0;
    int64_t enqueued_us = 0;
  };

  void Push(std::function<void()> job, TenantId tenant, uint32_t weight,
            int64_t enqueued_us);
  /// Pops the next job per DRR, or returns false if empty.
  bool Pop(Item* out);
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  struct SubQueue {
    std::deque<Item> items;
    uint32_t weight = 1;
    uint32_t credits = 0;
    bool active = false;  // present in rotation_
  };

  std::map<TenantId, SubQueue> queues_;
  std::deque<TenantId> rotation_;
  size_t size_ = 0;
};

}  // namespace lo::tenant
