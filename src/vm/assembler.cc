#include "vm/assembler.h"

#include <charconv>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lo::vm {
namespace {

struct Token {
  std::string text;
};

Status ErrorAt(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + message);
}

// Splits one line into whitespace-separated tokens; quoted strings are a
// single token (with quotes kept). ';;' starts a comment.
Result<std::vector<Token>> Tokenize(std::string_view line, int line_no) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char ch = line[i];
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      i++;
      continue;
    }
    if (ch == ';') break;  // comment to end of line
    if (ch == '"') {
      size_t j = i + 1;
      std::string out = "\"";
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\' && j + 1 < line.size()) {
          out.push_back(line[j]);
          out.push_back(line[j + 1]);
          j += 2;
        } else {
          out.push_back(line[j]);
          j++;
        }
      }
      if (j >= line.size()) return ErrorAt(line_no, "unterminated string");
      out.push_back('"');
      tokens.push_back({std::move(out)});
      i = j + 1;
      continue;
    }
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' && line[j] != ';' &&
           line[j] != '\r') {
      j++;
    }
    tokens.push_back({std::string(line.substr(i, j - i))});
    i = j;
  }
  return tokens;
}

Result<std::string> UnescapeString(std::string_view quoted, int line_no) {
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') {
    return ErrorAt(line_no, "expected quoted string");
  }
  std::string_view body = quoted.substr(1, quoted.size() - 2);
  std::string out;
  for (size_t i = 0; i < body.size(); i++) {
    if (body[i] != '\\') {
      out.push_back(body[i]);
      continue;
    }
    if (i + 1 >= body.size()) return ErrorAt(line_no, "dangling escape");
    char esc = body[++i];
    switch (esc) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case '0': out.push_back('\0'); break;
      case '\\': out.push_back('\\'); break;
      case '"': out.push_back('"'); break;
      case 'x': {
        if (i + 2 >= body.size()) return ErrorAt(line_no, "bad \\x escape");
        int value = 0;
        auto [p, ec] = std::from_chars(body.data() + i + 1, body.data() + i + 3,
                                       value, 16);
        if (ec != std::errc() || p != body.data() + i + 3) {
          return ErrorAt(line_no, "bad \\x escape");
        }
        out.push_back(static_cast<char>(value));
        i += 2;
        break;
      }
      default:
        return ErrorAt(line_no, std::string("unknown escape: \\") + esc);
    }
  }
  return out;
}

std::optional<uint64_t> ParseNumber(std::string_view text) {
  uint64_t value = 0;
  int base = 10;
  if (text.starts_with("0x")) {
    text.remove_prefix(2);
    base = 16;
  }
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc() || p != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<Op> OpFromName(std::string_view name) {
  for (uint8_t i = 0; i < static_cast<uint8_t>(Op::kOpCount); i++) {
    if (OpName(static_cast<Op>(i)) == name) return static_cast<Op>(i);
  }
  return std::nullopt;
}

struct PendingFixup {
  size_t instruction;
  std::string symbol;  // label (br) or function name (call)
  bool is_call;
  int line;
};

struct FunctionBuilder {
  Function fn;
  std::map<std::string, uint32_t> local_names;
  std::map<std::string, uint64_t> labels;
  std::vector<PendingFixup> fixups;
  int start_line = 0;
};

}  // namespace

Result<Module> Assemble(std::string_view source) {
  std::vector<Function> functions;
  std::map<std::string, uint32_t> function_names;
  std::vector<DataSegment> data;
  std::map<std::string, size_t> data_names;
  uint64_t memory = 64 * 1024;
  std::optional<FunctionBuilder> current;
  std::vector<std::pair<size_t, PendingFixup>> deferred_calls;  // (func idx, fixup)

  int line_no = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    line_no++;

    LO_ASSIGN_OR_RETURN(auto tokens, Tokenize(line, line_no));
    if (tokens.empty()) continue;
    const std::string& head = tokens[0].text;

    if (current.has_value()) {
      FunctionBuilder& builder = *current;
      // Label line: "name:"
      if (tokens.size() == 1 && head.size() > 1 && head.back() == ':') {
        std::string label = head.substr(0, head.size() - 1);
        if (!builder.labels.emplace(label, builder.fn.code.size()).second) {
          return ErrorAt(line_no, "duplicate label: " + label);
        }
        continue;
      }
      if (head == "end") {
        // Resolve branch labels now; calls after all functions are known.
        for (const auto& fixup : builder.fixups) {
          if (fixup.is_call) {
            deferred_calls.emplace_back(functions.size(), fixup);
            continue;
          }
          auto it = builder.labels.find(fixup.symbol);
          if (it == builder.labels.end()) {
            return ErrorAt(fixup.line, "unknown label: " + fixup.symbol);
          }
          builder.fn.code[fixup.instruction].imm = it->second;
        }
        if (!function_names.emplace(builder.fn.name,
                                    static_cast<uint32_t>(functions.size()))
                 .second) {
          return ErrorAt(line_no, "duplicate function: " + builder.fn.name);
        }
        functions.push_back(std::move(builder.fn));
        current.reset();
        continue;
      }
      // Instruction line.
      auto op = OpFromName(head);
      if (!op.has_value()) return ErrorAt(line_no, "unknown instruction: " + head);
      Instruction instr;
      instr.op = *op;
      if (OpHasImmediate(*op)) {
        if (tokens.size() != 2) return ErrorAt(line_no, head + " needs an operand");
        const std::string& operand = tokens[1].text;
        if (*op == Op::kCall) {
          builder.fixups.push_back(
              {builder.fn.code.size(), operand, /*is_call=*/true, line_no});
        } else if (*op == Op::kBr || *op == Op::kBrIf) {
          builder.fixups.push_back(
              {builder.fn.code.size(), operand, /*is_call=*/false, line_no});
        } else if (*op == Op::kLocalGet || *op == Op::kLocalSet ||
                   *op == Op::kLocalTee) {
          auto it = builder.local_names.find(operand);
          if (it != builder.local_names.end()) {
            instr.imm = it->second;
          } else if (auto n = ParseNumber(operand)) {
            instr.imm = *n;
          } else {
            return ErrorAt(line_no, "unknown local: " + operand);
          }
        } else {  // push
          if (operand.starts_with("@") || operand.starts_with("#")) {
            auto it = data_names.find(operand.substr(1));
            if (it == data_names.end()) {
              return ErrorAt(line_no, "unknown data symbol: " + operand);
            }
            const DataSegment& segment = data[it->second];
            instr.imm = operand[0] == '@' ? segment.offset : segment.bytes.size();
          } else if (auto n = ParseNumber(operand)) {
            instr.imm = *n;
          } else {
            return ErrorAt(line_no, "bad immediate: " + operand);
          }
        }
      } else if (tokens.size() != 1) {
        return ErrorAt(line_no, head + " takes no operand");
      }
      builder.fn.code.push_back(instr);
      continue;
    }

    // Top level.
    if (head == "memory") {
      if (tokens.size() != 2) return ErrorAt(line_no, "memory <bytes>");
      auto n = ParseNumber(tokens[1].text);
      if (!n) return ErrorAt(line_no, "bad memory size");
      memory = *n;
    } else if (head == "data") {
      if (tokens.size() != 4) return ErrorAt(line_no, "data <name> <offset> \"...\"");
      auto offset = ParseNumber(tokens[2].text);
      if (!offset) return ErrorAt(line_no, "bad data offset");
      LO_ASSIGN_OR_RETURN(std::string bytes, UnescapeString(tokens[3].text, line_no));
      data.push_back(DataSegment{*offset, std::move(bytes)});
      if (!data_names.emplace(tokens[1].text, data.size() - 1).second) {
        return ErrorAt(line_no, "duplicate data symbol: " + tokens[1].text);
      }
    } else if (head == "func") {
      if (tokens.size() < 2) return ErrorAt(line_no, "func <name> [export] ...");
      FunctionBuilder builder;
      builder.fn.name = tokens[1].text;
      builder.start_line = line_no;
      size_t i = 2;
      while (i < tokens.size()) {
        const std::string& word = tokens[i].text;
        if (word == "export") {
          builder.fn.exported = true;
          i++;
        } else if (word == "results") {
          if (i + 1 >= tokens.size()) return ErrorAt(line_no, "results <n>");
          auto n = ParseNumber(tokens[i + 1].text);
          if (!n) return ErrorAt(line_no, "bad results count");
          builder.fn.num_results = static_cast<uint32_t>(*n);
          i += 2;
        } else if (word == "params" || word == "locals") {
          bool is_params = word == "params";
          i++;
          while (i < tokens.size() && tokens[i].text != "results" &&
                 tokens[i].text != "locals" && tokens[i].text != "params" &&
                 tokens[i].text != "export") {
            uint32_t index = builder.fn.num_params + builder.fn.num_locals;
            if (!builder.local_names.emplace(tokens[i].text, index).second) {
              return ErrorAt(line_no, "duplicate local: " + tokens[i].text);
            }
            if (is_params) {
              builder.fn.num_params++;
            } else {
              builder.fn.num_locals++;
            }
            i++;
          }
          if (is_params && builder.fn.num_locals > 0) {
            return ErrorAt(line_no, "params must come before locals");
          }
        } else {
          return ErrorAt(line_no, "unexpected token in func header: " + word);
        }
      }
      current = std::move(builder);
    } else {
      return ErrorAt(line_no, "unexpected top-level token: " + head);
    }
  }
  if (current.has_value()) {
    return ErrorAt(current->start_line, "func without matching end");
  }

  for (const auto& [fn_index, fixup] : deferred_calls) {
    auto it = function_names.find(fixup.symbol);
    if (it == function_names.end()) {
      return ErrorAt(fixup.line, "unknown function: " + fixup.symbol);
    }
    functions[fn_index].code[fixup.instruction].imm = it->second;
  }

  return Module::Create(std::move(functions), std::move(data), memory);
}

}  // namespace lo::vm
