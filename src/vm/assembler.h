// λasm — the textual form of LambdaVM modules.
//
//   ;; comment
//   memory 65536
//   data greeting 256 "hello \x00world"
//
//   func add2 params a b results 1
//     local.get a
//     local.get b
//     add
//     return
//   end
//
//   func main export locals n
//     push @greeting        ;; address of the data segment
//     push #greeting        ;; its length
//     ret
//   end
//
// Labels are `name:` lines; `br name` / `br_if name` jump to them.
// `call f` references functions by name. Locals are named via
// `params ...` / `locals ...` and referenced by name or index.
#pragma once

#include <string_view>

#include "common/status.h"
#include "vm/module.h"

namespace lo::vm {

/// Assembles λasm source into a validated Module.
/// Errors carry the 1-based source line number.
Result<Module> Assemble(std::string_view source);

}  // namespace lo::vm
