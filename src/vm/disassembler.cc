#include "vm/disassembler.h"

#include <map>
#include <set>

namespace lo::vm {
namespace {

void AppendEscaped(std::string* out, std::string_view bytes) {
  out->push_back('"');
  for (char c : bytes) {
    switch (c) {
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\0': *out += "\\0"; break;
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      default:
        if (static_cast<uint8_t>(c) < 0x20 || static_cast<uint8_t>(c) > 0x7e) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<uint8_t>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Disassemble(const Module& module) {
  std::string out;
  out += "memory " + std::to_string(module.min_memory()) + "\n";
  for (size_t i = 0; i < module.data().size(); i++) {
    const DataSegment& segment = module.data()[i];
    out += "data d" + std::to_string(i) + " " + std::to_string(segment.offset) + " ";
    AppendEscaped(&out, segment.bytes);
    out += "\n";
  }

  for (const Function& fn : module.functions()) {
    out += "\nfunc " + fn.name;
    if (fn.exported) out += " export";
    if (fn.num_params > 0) {
      out += " params";
      for (uint32_t p = 0; p < fn.num_params; p++) out += " p" + std::to_string(p);
    }
    if (fn.num_locals > 0) {
      out += " locals";
      for (uint32_t l = 0; l < fn.num_locals; l++) out += " v" + std::to_string(l);
    }
    if (fn.num_results > 0) out += " results " + std::to_string(fn.num_results);
    out += "\n";

    // Collect branch targets so they come out as labels.
    std::set<uint64_t> targets;
    for (const Instruction& instr : fn.code) {
      if (instr.op == Op::kBr || instr.op == Op::kBrIf) targets.insert(instr.imm);
    }
    for (uint64_t pc = 0; pc < fn.code.size(); pc++) {
      if (targets.contains(pc)) {
        out += "L" + std::to_string(pc) + ":\n";
      }
      const Instruction& instr = fn.code[pc];
      out += "  ";
      out += OpName(instr.op);
      if (OpHasImmediate(instr.op)) {
        out += " ";
        switch (instr.op) {
          case Op::kBr:
          case Op::kBrIf:
            out += "L" + std::to_string(instr.imm);
            break;
          case Op::kCall:
            out += module.function(static_cast<uint32_t>(instr.imm)).name;
            break;
          case Op::kLocalGet:
          case Op::kLocalSet:
          case Op::kLocalTee:
            out += instr.imm < fn.num_params
                       ? "p" + std::to_string(instr.imm)
                       : "v" + std::to_string(instr.imm - fn.num_params);
            break;
          default:
            out += std::to_string(instr.imm);
        }
      }
      out += "\n";
    }
    // The validator guarantees every branch target < code.size(), so no
    // label can point past the last instruction.
    out += "end\n";
  }
  return out;
}

}  // namespace lo::vm
