// Disassembler: Module -> λasm text. Round-trips with the assembler
// (assemble(disassemble(m)) is structurally identical to m), which the
// property tests verify; used by the lobj-tool CLI for inspecting
// uploaded function binaries.
#pragma once

#include <string>

#include "vm/module.h"

namespace lo::vm {

/// Renders a module as λasm source. Data segments get symbolic names
/// d0, d1, ...; branch targets get labels L<pc>.
std::string Disassemble(const Module& module);

}  // namespace lo::vm
