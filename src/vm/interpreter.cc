#include "vm/interpreter.h"

#include <cstring>

#include "common/log.h"

namespace lo::vm {

Instance::Instance(const Module* module, VmLimits limits)
    : module_(module), limits_(limits), fuel_left_(limits.fuel) {
  uint64_t mem = std::min<uint64_t>(module->min_memory(), limits_.max_memory);
  memory_.assign(static_cast<size_t>(mem), 0);
  for (const auto& segment : module->data()) {
    // Validated against min_memory at module creation.
    std::memcpy(memory_.data() + segment.offset, segment.bytes.data(),
                segment.bytes.size());
  }
  stack_.reserve(256);
}

void Instance::Trap(std::string message) {
  if (trap_status_.ok()) trap_status_ = Status::Trap(std::move(message));
}

bool Instance::Push(uint64_t v) {
  if (stack_.size() >= limits_.max_stack) {
    Trap("operand stack overflow");
    return false;
  }
  stack_.push_back(v);
  return true;
}

bool Instance::Pop(uint64_t* v) {
  if (stack_.empty()) {
    Trap("operand stack underflow");
    return false;
  }
  *v = stack_.back();
  stack_.pop_back();
  return true;
}

bool Instance::CheckMem(uint64_t addr, uint64_t len) {
  if (addr > memory_.size() || len > memory_.size() - addr) {
    Trap("memory access out of bounds");
    return false;
  }
  return true;
}

bool Instance::ReadMem(uint64_t addr, uint64_t len, std::string_view* out) {
  if (!CheckMem(addr, len)) return false;
  *out = std::string_view(reinterpret_cast<const char*>(memory_.data()) + addr,
                          static_cast<size_t>(len));
  return true;
}

bool Instance::WriteMem(uint64_t addr, std::string_view bytes) {
  if (!CheckMem(addr, bytes.size())) return false;
  std::memcpy(memory_.data() + addr, bytes.data(), bytes.size());
  return true;
}

bool Instance::ChargeFuel(uint64_t amount) {
  if (fuel_left_ < amount) {
    fuel_left_ = 0;
    Trap("fuel exhausted");
    return false;
  }
  fuel_left_ -= amount;
  metrics_.fuel_used += amount;
  if (limits_.fuel_tap) {
    // Chunked so the common path is integer arithmetic, not a
    // std::function call per instruction.
    constexpr uint64_t kFuelTapChunk = 4096;
    tap_pending_ += amount;
    if (tap_pending_ >= kFuelTapChunk && !FlushFuelTap()) return false;
  }
  return true;
}

bool Instance::FlushFuelTap() {
  if (tap_pending_ == 0 || !limits_.fuel_tap) return true;
  uint64_t spent = tap_pending_;
  tap_pending_ = 0;
  Status vetoed = limits_.fuel_tap(spent);
  if (!vetoed.ok()) {
    // The tap's status (e.g. kTenantThrottled) wins over a generic trap.
    if (trap_status_.ok()) trap_status_ = std::move(vetoed);
    return false;
  }
  return true;
}

sim::Task<Result<std::string>> Instance::Invoke(std::string_view function,
                                                std::string argument,
                                                HostApi* host) {
  auto index = module_->FindExport(function);
  if (!index.ok()) co_return index.status();
  argument_ = std::move(argument);
  host_ = host;
  const Function& fn = module_->function(*index);
  // Exported entry points take no stack parameters; the argument buffer
  // is reached through the `arg` opcode.
  if (fn.num_params != 0) {
    co_return Status::InvalidArgument("exported function must take 0 params");
  }
  Result<std::string> result = co_await Run(*index);
  // Account the final partial chunk (also charged when the run trapped):
  // the tap must see every unit the meter recorded. A veto here does not
  // retroactively fail a completed invocation.
  if (limits_.fuel_tap && tap_pending_ > 0) {
    limits_.fuel_tap(tap_pending_);
    tap_pending_ = 0;
  }
  co_return result;
}

sim::Task<Result<std::string>> Instance::Run(uint32_t function_index) {
  if (depth_ >= limits_.max_call_depth) {
    Trap("call depth exceeded");
    co_return trap_status_;
  }
  depth_++;
  const Function& fn = module_->function(function_index);
  std::vector<uint64_t> locals(fn.num_params + fn.num_locals, 0);
  // Calling convention: args pushed left-to-right, popped here.
  for (uint32_t i = fn.num_params; i > 0; i--) {
    if (!Pop(&locals[i - 1])) {
      depth_--;
      co_return trap_status_;
    }
  }
  size_t stack_floor = stack_.size();

  uint64_t pc = 0;
  while (pc < fn.code.size()) {
    const Instruction& instr = fn.code[pc];
    if (!ChargeFuel(kFuelPerInstruction)) break;
    metrics_.instructions++;
    pc++;
    uint64_t a = 0, b = 0, c = 0;
    switch (instr.op) {
      case Op::kNop:
        break;
      case Op::kUnreachable:
        Trap("unreachable executed");
        break;
      case Op::kBr:
        pc = instr.imm;
        break;
      case Op::kBrIf:
        if (!Pop(&a)) break;
        if (a != 0) pc = instr.imm;
        break;
      case Op::kCall: {
        auto nested = co_await Run(static_cast<uint32_t>(instr.imm));
        if (!nested.ok()) {
          if (trap_status_.ok()) trap_status_ = nested.status();
        }
        break;
      }
      case Op::kReturn:
        pc = fn.code.size();
        break;
      case Op::kPush:
        Push(instr.imm);
        break;
      case Op::kDrop:
        Pop(&a);
        break;
      case Op::kDup:
        if (Pop(&a)) {
          Push(a);
          Push(a);
        }
        break;
      case Op::kSwap:
        if (Pop(&a) && Pop(&b)) {
          Push(a);
          Push(b);
        }
        break;
      case Op::kLocalGet:
        Push(locals[instr.imm]);
        break;
      case Op::kLocalSet:
        if (Pop(&a)) locals[instr.imm] = a;
        break;
      case Op::kLocalTee:
        if (Pop(&a)) {
          locals[instr.imm] = a;
          Push(a);
        }
        break;
#define LO_VM_BINOP(opcode, expr)                   \
  case opcode:                                      \
    if (Pop(&b) && Pop(&a)) Push(expr);             \
    break
      LO_VM_BINOP(Op::kAdd, a + b);
      LO_VM_BINOP(Op::kSub, a - b);
      LO_VM_BINOP(Op::kMul, a * b);
      LO_VM_BINOP(Op::kAnd, a & b);
      LO_VM_BINOP(Op::kOr, a | b);
      LO_VM_BINOP(Op::kXor, a ^ b);
      LO_VM_BINOP(Op::kShl, b >= 64 ? 0 : a << b);
      LO_VM_BINOP(Op::kShrU, b >= 64 ? 0 : a >> b);
      LO_VM_BINOP(Op::kEq, static_cast<uint64_t>(a == b));
      LO_VM_BINOP(Op::kNe, static_cast<uint64_t>(a != b));
      LO_VM_BINOP(Op::kLtU, static_cast<uint64_t>(a < b));
      LO_VM_BINOP(Op::kGtU, static_cast<uint64_t>(a > b));
      LO_VM_BINOP(Op::kLeU, static_cast<uint64_t>(a <= b));
      LO_VM_BINOP(Op::kGeU, static_cast<uint64_t>(a >= b));
#undef LO_VM_BINOP
      case Op::kDivU:
        if (Pop(&b) && Pop(&a)) {
          if (b == 0) {
            Trap("division by zero");
          } else {
            Push(a / b);
          }
        }
        break;
      case Op::kRemU:
        if (Pop(&b) && Pop(&a)) {
          if (b == 0) {
            Trap("remainder by zero");
          } else {
            Push(a % b);
          }
        }
        break;
      case Op::kEqz:
        if (Pop(&a)) Push(static_cast<uint64_t>(a == 0));
        break;
      case Op::kLoad8:
        if (Pop(&a) && CheckMem(a, 1)) Push(memory_[a]);
        break;
      case Op::kLoad64:
        if (Pop(&a) && CheckMem(a, 8)) {
          uint64_t v = 0;
          std::memcpy(&v, memory_.data() + a, 8);  // little-endian host
          Push(v);
        }
        break;
      case Op::kStore8:
        if (Pop(&a) && Pop(&b) && CheckMem(b, 1)) {
          memory_[b] = static_cast<uint8_t>(a);
        }
        break;
      case Op::kStore64:
        if (Pop(&a) && Pop(&b) && CheckMem(b, 8)) {
          std::memcpy(memory_.data() + b, &a, 8);
        }
        break;
      case Op::kMemSize:
        Push(memory_.size());
        break;
      case Op::kMemCopy:
        if (Pop(&c) && Pop(&b) && Pop(&a)) {  // len=c src=b dst=a
          if (ChargeFuel(c / 8) && CheckMem(b, c) && CheckMem(a, c)) {
            std::memmove(memory_.data() + a, memory_.data() + b, c);
          }
        }
        break;
      case Op::kMemFill:
        if (Pop(&c) && Pop(&b) && Pop(&a)) {  // len=c byte=b dst=a
          if (ChargeFuel(c / 8) && CheckMem(a, c)) {
            std::memset(memory_.data() + a, static_cast<int>(b), c);
          }
        }
        break;
      case Op::kKvGet: {
        uint64_t dst_cap, dst, key_len, key_ptr;
        if (!Pop(&dst_cap) || !Pop(&dst) || !Pop(&key_len) || !Pop(&key_ptr)) break;
        if (!ChargeFuel(kFuelPerHostCall)) break;
        std::string_view key;
        if (!ReadMem(key_ptr, key_len, &key)) break;
        metrics_.host_calls++;
        auto value = co_await host_->KvGet(key);
        if (!value.ok()) {
          if (value.status().IsNotFound()) {
            Push(kKvNotFound);
          } else {
            if (trap_status_.ok()) trap_status_ = value.status();
          }
          break;
        }
        size_t n = std::min<size_t>(value->size(), dst_cap);
        if (!WriteMem(dst, std::string_view(*value).substr(0, n))) break;
        Push(value->size());
        break;
      }
      case Op::kKvPut: {
        uint64_t val_len, val_ptr, key_len, key_ptr;
        if (!Pop(&val_len) || !Pop(&val_ptr) || !Pop(&key_len) || !Pop(&key_ptr)) break;
        if (!ChargeFuel(kFuelPerHostCall)) break;
        std::string_view key, value;
        if (!ReadMem(key_ptr, key_len, &key) || !ReadMem(val_ptr, val_len, &value)) break;
        metrics_.host_calls++;
        Status s = co_await host_->KvPut(key, value);
        if (!s.ok() && trap_status_.ok()) trap_status_ = s;
        break;
      }
      case Op::kKvDelete: {
        uint64_t key_len, key_ptr;
        if (!Pop(&key_len) || !Pop(&key_ptr)) break;
        if (!ChargeFuel(kFuelPerHostCall)) break;
        std::string_view key;
        if (!ReadMem(key_ptr, key_len, &key)) break;
        metrics_.host_calls++;
        Status s = co_await host_->KvDelete(key);
        if (!s.ok() && trap_status_.ok()) trap_status_ = s;
        break;
      }
      case Op::kInvoke: {
        uint64_t dst_cap, dst, arg_len, arg_ptr, fn_len, fn_ptr, oid_len, oid_ptr;
        if (!Pop(&dst_cap) || !Pop(&dst) || !Pop(&arg_len) || !Pop(&arg_ptr) ||
            !Pop(&fn_len) || !Pop(&fn_ptr) || !Pop(&oid_len) || !Pop(&oid_ptr)) {
          break;
        }
        if (!ChargeFuel(kFuelPerHostCall)) break;
        std::string_view oid, fname, arg;
        if (!ReadMem(oid_ptr, oid_len, &oid) || !ReadMem(fn_ptr, fn_len, &fname) ||
            !ReadMem(arg_ptr, arg_len, &arg)) {
          break;
        }
        metrics_.host_calls++;
        // Copy out of linear memory: the callee may run while we hold these.
        auto result =
            co_await host_->InvokeObject(std::string(oid), std::string(fname),
                                         std::string(arg));
        if (!result.ok()) {
          if (trap_status_.ok()) trap_status_ = result.status();
          break;
        }
        size_t n = std::min<size_t>(result->size(), dst_cap);
        if (!WriteMem(dst, std::string_view(*result).substr(0, n))) break;
        Push(result->size());
        break;
      }
      case Op::kArg: {
        uint64_t dst_cap, dst;
        if (!Pop(&dst_cap) || !Pop(&dst)) break;
        size_t n = std::min<size_t>(argument_.size(), dst_cap);
        if (!WriteMem(dst, std::string_view(argument_).substr(0, n))) break;
        Push(argument_.size());
        break;
      }
      case Op::kRet: {
        uint64_t len, ptr;
        if (!Pop(&len) || !Pop(&ptr)) break;
        std::string_view bytes;
        if (!ReadMem(ptr, len, &bytes)) break;
        result_.assign(bytes);
        result_set_ = true;
        break;
      }
      case Op::kTime:
        Push(host_->TimeMillis());
        break;
      case Op::kLog: {
        uint64_t len, ptr;
        if (!Pop(&len) || !Pop(&ptr)) break;
        std::string_view bytes;
        if (ReadMem(ptr, len, &bytes)) host_->DebugLog(bytes);
        break;
      }
      case Op::kOpCount:
        Trap("invalid opcode");
        break;
    }
    if (!trap_status_.ok()) break;
  }
  depth_--;

  if (!trap_status_.ok()) co_return trap_status_;

  // Enforce the declared result arity toward the caller.
  if (stack_.size() < stack_floor + fn.num_results) {
    Trap("function returned too few values");
    co_return trap_status_;
  }
  uint64_t result_value = 0;
  if (fn.num_results == 1) {
    result_value = stack_.back();
  }
  stack_.resize(stack_floor);
  if (fn.num_results == 1) stack_.push_back(result_value);

  co_return result_;
}

}  // namespace lo::vm
