// LambdaVM interpreter: fuel-metered, bounds-checked execution of one
// exported function. Host calls are coroutines, so a running function
// can suspend on storage access or on a nested object invocation — the
// same shape as a WASM runtime with async host imports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/task.h"
#include "vm/module.h"

namespace lo::vm {

/// The host ABI surface a LambdaObject method sees (paper §3: "a
/// key-value API and some utility functions"). Implemented by the
/// runtime's InvocationContext; tests use in-memory fakes.
class HostApi {
 public:
  virtual ~HostApi() = default;

  /// NotFound when the key is absent.
  virtual sim::Task<Result<std::string>> KvGet(std::string_view key) = 0;
  virtual sim::Task<Status> KvPut(std::string_view key, std::string_view value) = 0;
  virtual sim::Task<Status> KvDelete(std::string_view key) = 0;
  /// Invokes `function` on another object; returns its result buffer.
  virtual sim::Task<Result<std::string>> InvokeObject(std::string_view object_id,
                                                      std::string_view function,
                                                      std::string_view argument) = 0;
  /// Virtual wall-clock time, milliseconds.
  virtual uint64_t TimeMillis() = 0;
  virtual void DebugLog(std::string_view message) { (void)message; }
};

/// External fuel sink: receives fuel amounts as the instance burns them
/// and may veto further execution by returning a non-OK status (which
/// becomes the invocation's trap status). The VM stays policy-agnostic —
/// the runtime installs a tap that debits the invoking tenant's budget
/// and returns kTenantThrottled when the window is dry.
using FuelTap = std::function<Status(uint64_t spent)>;

struct VmLimits {
  uint64_t fuel = 10'000'000;
  uint64_t max_memory = 1 << 20;
  uint32_t max_call_depth = 64;
  uint32_t max_stack = 4096;
  /// Optional; called every ~4096 fuel (and once at invocation end) so
  /// the per-instruction hot path stays a bare integer decrement.
  FuelTap fuel_tap;
};

struct VmMetrics {
  uint64_t instructions = 0;
  uint64_t fuel_used = 0;
  uint64_t host_calls = 0;
};

/// One instantiation = one invocation (fresh memory, fresh stack), per
/// the paper's "short-lived and isolated" method semantics.
class Instance {
 public:
  Instance(const Module* module, VmLimits limits);

  /// Runs exported `function` with `argument` readable via the `arg`
  /// opcode. Returns the buffer set by `ret` (empty if never set).
  /// Sandbox violations and fuel exhaustion surface as Status::Trap.
  sim::Task<Result<std::string>> Invoke(std::string_view function,
                                        std::string argument, HostApi* host);

  const VmMetrics& metrics() const { return metrics_; }

 private:
  sim::Task<Result<std::string>> Run(uint32_t function_index);

  // All return false after setting trap_ on a sandbox violation.
  bool Push(uint64_t v);
  bool Pop(uint64_t* v);
  bool CheckMem(uint64_t addr, uint64_t len);
  bool ReadMem(uint64_t addr, uint64_t len, std::string_view* out);
  bool WriteMem(uint64_t addr, std::string_view bytes);
  bool ChargeFuel(uint64_t amount);
  /// Pushes accumulated fuel into limits_.fuel_tap. Returns false (with
  /// the tap's status as the trap status) if the tap vetoes execution.
  bool FlushFuelTap();
  void Trap(std::string message);

  const Module* module_;
  VmLimits limits_;
  std::vector<uint8_t> memory_;
  std::vector<uint64_t> stack_;
  std::string argument_;
  std::string result_;
  bool result_set_ = false;
  uint64_t fuel_left_ = 0;
  uint64_t tap_pending_ = 0;  // fuel burned since the last tap flush
  uint32_t depth_ = 0;
  Status trap_status_;
  HostApi* host_ = nullptr;
  VmMetrics metrics_;
};

}  // namespace lo::vm
