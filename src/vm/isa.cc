#include "vm/isa.h"

namespace lo::vm {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kUnreachable: return "unreachable";
    case Op::kBr: return "br";
    case Op::kBrIf: return "br_if";
    case Op::kCall: return "call";
    case Op::kReturn: return "return";
    case Op::kPush: return "push";
    case Op::kDrop: return "drop";
    case Op::kDup: return "dup";
    case Op::kSwap: return "swap";
    case Op::kLocalGet: return "local.get";
    case Op::kLocalSet: return "local.set";
    case Op::kLocalTee: return "local.tee";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDivU: return "div_u";
    case Op::kRemU: return "rem_u";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShrU: return "shr_u";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLtU: return "lt_u";
    case Op::kGtU: return "gt_u";
    case Op::kLeU: return "le_u";
    case Op::kGeU: return "ge_u";
    case Op::kEqz: return "eqz";
    case Op::kLoad8: return "load8";
    case Op::kLoad64: return "load64";
    case Op::kStore8: return "store8";
    case Op::kStore64: return "store64";
    case Op::kMemSize: return "mem.size";
    case Op::kMemCopy: return "mem.copy";
    case Op::kMemFill: return "mem.fill";
    case Op::kKvGet: return "kv.get";
    case Op::kKvPut: return "kv.put";
    case Op::kKvDelete: return "kv.delete";
    case Op::kInvoke: return "invoke";
    case Op::kArg: return "arg";
    case Op::kRet: return "ret";
    case Op::kTime: return "time";
    case Op::kLog: return "log";
    case Op::kOpCount: break;
  }
  return "?";
}

bool OpHasImmediate(Op op) {
  switch (op) {
    case Op::kBr:
    case Op::kBrIf:
    case Op::kCall:
    case Op::kPush:
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
      return true;
    default:
      return false;
  }
}

int OpPops(Op op) {
  switch (op) {
    case Op::kNop: case Op::kUnreachable: case Op::kBr: case Op::kCall:
    case Op::kReturn: case Op::kPush: case Op::kLocalGet: case Op::kMemSize:
    case Op::kTime:
      return 0;
    case Op::kBrIf: case Op::kDrop: case Op::kLocalSet: case Op::kLocalTee:
    case Op::kEqz: case Op::kLoad8: case Op::kLoad64: case Op::kDup:
      return 1;
    case Op::kSwap: case Op::kAdd: case Op::kSub: case Op::kMul:
    case Op::kDivU: case Op::kRemU: case Op::kAnd: case Op::kOr:
    case Op::kXor: case Op::kShl: case Op::kShrU: case Op::kEq:
    case Op::kNe: case Op::kLtU: case Op::kGtU: case Op::kLeU:
    case Op::kGeU: case Op::kStore8: case Op::kStore64: case Op::kArg:
    case Op::kRet: case Op::kLog:
      return 2;
    case Op::kMemCopy: case Op::kMemFill:
      return 3;
    case Op::kKvGet: case Op::kKvPut:
      return 4;
    case Op::kKvDelete:
      return 2;
    case Op::kInvoke:
      return 8;
    case Op::kOpCount:
      break;
  }
  return 0;
}

int OpPushes(Op op) {
  switch (op) {
    case Op::kPush: case Op::kLocalGet: case Op::kLocalTee: case Op::kEqz:
    case Op::kLoad8: case Op::kLoad64: case Op::kMemSize: case Op::kTime:
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDivU:
    case Op::kRemU: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kShl: case Op::kShrU: case Op::kEq: case Op::kNe:
    case Op::kLtU: case Op::kGtU: case Op::kLeU: case Op::kGeU:
    case Op::kKvGet: case Op::kInvoke: case Op::kArg:
      return 1;
    case Op::kDup: case Op::kSwap:
      return 2;
    default:
      return 0;
  }
}

}  // namespace lo::vm
