// LambdaVM instruction set.
//
// A small stack machine standing in for WebAssembly (paper §4.2): it
// provides the same two properties LambdaStore needs from WASM —
// software fault isolation (every memory access bounds-checked, no
// escape from the sandbox) and metering (fuel decremented per
// instruction; execution traps when the budget is exhausted).
//
// Values are uint64_t. Functions have params/locals/results; a fixed
// host ABI (KV access, nested object invocation, time) mirrors the
// paper's "key-value API and some utility functions".
#pragma once

#include <cstdint>
#include <string_view>

namespace lo::vm {

enum class Op : uint8_t {
  // Control
  kNop = 0,
  kUnreachable,   // unconditional trap
  kBr,            // imm: target instruction index
  kBrIf,          // pops cond; jumps if != 0
  kCall,          // imm: function index
  kReturn,
  // Stack & locals
  kPush,          // imm: 64-bit constant
  kDrop,
  kDup,
  kSwap,
  kLocalGet,      // imm: local index
  kLocalSet,
  kLocalTee,      // set without popping
  // Integer arithmetic (unsigned 64-bit, wrapping)
  kAdd, kSub, kMul, kDivU, kRemU,
  kAnd, kOr, kXor, kShl, kShrU,
  // Comparisons (push 0/1)
  kEq, kNe, kLtU, kGtU, kLeU, kGeU, kEqz,
  // Memory (bounds-checked linear memory)
  kLoad8,         // pops addr, pushes zero-extended byte
  kLoad64,        // pops addr (little-endian)
  kStore8,        // pops value, addr
  kStore64,
  kMemSize,       // pushes memory size in bytes
  kMemCopy,       // pops len, src, dst (bulk ops, like WASM bulk-memory)
  kMemFill,       // pops len, byte, dst
  // Host ABI (imm unused; signature fixed per op)
  kKvGet,         // (key_ptr key_len dst_ptr dst_cap) -> len | U64MAX
  kKvPut,         // (key_ptr key_len val_ptr val_len) ->
  kKvDelete,      // (key_ptr key_len) ->
  kInvoke,        // (oid_ptr oid_len fn_ptr fn_len arg_ptr arg_len dst dst_cap) -> len
  kArg,           // (dst_ptr dst_cap) -> full arg length
  kRet,           // (ptr len) -> ; sets invocation result buffer
  kTime,          // -> virtual unix time, milliseconds
  kLog,           // (ptr len) -> ; debug log through the host

  kOpCount,
};

/// Mnemonic, e.g. "local.get"; "?" for invalid opcodes.
std::string_view OpName(Op op);
/// True if the opcode carries an immediate operand.
bool OpHasImmediate(Op op);
/// Stack effect: values popped / pushed (host ops included).
int OpPops(Op op);
int OpPushes(Op op);

/// Fuel cost charged before executing the instruction.
constexpr uint64_t kFuelPerInstruction = 1;
constexpr uint64_t kFuelPerHostCall = 50;
/// Bulk memory ops additionally cost 1 fuel per 8 bytes.

constexpr uint64_t kKvNotFound = UINT64_MAX;

}  // namespace lo::vm
