#include "vm/module.h"

#include "common/coding.h"

namespace lo::vm {
namespace {

constexpr uint32_t kModuleMagic = 0x4c564d31;  // "LVM1"
constexpr uint32_t kMaxFunctions = 4096;
constexpr uint32_t kMaxCodeLength = 1 << 20;
constexpr uint32_t kMaxLocals = 256;

Status ValidateFunction(const Function& fn, size_t num_functions,
                        const std::vector<Function>& all) {
  if (fn.num_results > 1) {
    return Status::InvalidArgument("function " + fn.name + ": results > 1");
  }
  if (fn.num_params + fn.num_locals > kMaxLocals) {
    return Status::InvalidArgument("function " + fn.name + ": too many locals");
  }
  if (fn.code.size() > kMaxCodeLength) {
    return Status::InvalidArgument("function " + fn.name + ": code too long");
  }
  uint32_t num_slots = fn.num_params + fn.num_locals;
  for (size_t pc = 0; pc < fn.code.size(); pc++) {
    const Instruction& instr = fn.code[pc];
    if (instr.op >= Op::kOpCount) {
      return Status::InvalidArgument("function " + fn.name + ": bad opcode");
    }
    switch (instr.op) {
      case Op::kBr:
      case Op::kBrIf:
        if (instr.imm >= fn.code.size()) {
          return Status::InvalidArgument("function " + fn.name +
                                         ": branch target out of range");
        }
        break;
      case Op::kLocalGet:
      case Op::kLocalSet:
      case Op::kLocalTee:
        if (instr.imm >= num_slots) {
          return Status::InvalidArgument("function " + fn.name +
                                         ": local index out of range");
        }
        break;
      case Op::kCall: {
        if (instr.imm >= num_functions) {
          return Status::InvalidArgument("function " + fn.name +
                                         ": call target out of range");
        }
        break;
      }
      default:
        break;
    }
  }
  (void)all;
  return Status::OK();
}

}  // namespace

Result<Module> Module::Create(std::vector<Function> functions,
                              std::vector<DataSegment> data, uint64_t min_memory) {
  Module module;
  if (functions.size() > kMaxFunctions) {
    return Status::InvalidArgument("too many functions");
  }
  for (uint32_t i = 0; i < functions.size(); i++) {
    LO_RETURN_IF_ERROR(ValidateFunction(functions[i], functions.size(), functions));
    if (functions[i].exported) {
      auto [it, inserted] = module.exports_.emplace(functions[i].name, i);
      if (!inserted) {
        return Status::InvalidArgument("duplicate export: " + functions[i].name);
      }
    }
  }
  for (const auto& segment : data) {
    if (segment.offset + segment.bytes.size() > min_memory) {
      return Status::InvalidArgument("data segment outside memory");
    }
  }
  module.functions_ = std::move(functions);
  module.data_ = std::move(data);
  module.min_memory_ = min_memory;
  return module;
}

Result<uint32_t> Module::FindExport(std::string_view name) const {
  auto it = exports_.find(name);
  if (it == exports_.end()) {
    return Status::NotFound("no exported function: " + std::string(name));
  }
  return it->second;
}

std::string Module::Serialize() const {
  std::string out;
  PutFixed32(&out, kModuleMagic);
  PutVarint64(&out, min_memory_);
  PutVarint32(&out, static_cast<uint32_t>(functions_.size()));
  for (const auto& fn : functions_) {
    PutLengthPrefixed(&out, fn.name);
    PutVarint32(&out, fn.num_params);
    PutVarint32(&out, fn.num_locals);
    PutVarint32(&out, fn.num_results);
    out.push_back(fn.exported ? 1 : 0);
    PutVarint32(&out, static_cast<uint32_t>(fn.code.size()));
    for (const auto& instr : fn.code) {
      out.push_back(static_cast<char>(instr.op));
      if (OpHasImmediate(instr.op)) PutVarint64(&out, instr.imm);
    }
  }
  PutVarint32(&out, static_cast<uint32_t>(data_.size()));
  for (const auto& segment : data_) {
    PutVarint64(&out, segment.offset);
    PutLengthPrefixed(&out, segment.bytes);
  }
  return out;
}

Result<Module> Module::Deserialize(std::string_view bytes) {
  Reader reader{bytes};
  uint32_t magic = 0;
  if (!reader.GetFixed32(&magic) || magic != kModuleMagic) {
    return Status::Corruption("bad module magic");
  }
  uint64_t min_memory = 0;
  uint32_t num_functions = 0;
  if (!reader.GetVarint64(&min_memory) || !reader.GetVarint32(&num_functions) ||
      num_functions > kMaxFunctions) {
    return Status::Corruption("bad module header");
  }
  std::vector<Function> functions;
  functions.reserve(num_functions);
  for (uint32_t i = 0; i < num_functions; i++) {
    Function fn;
    std::string_view name;
    uint32_t code_len = 0;
    std::string_view exported;
    if (!reader.GetLengthPrefixed(&name) || !reader.GetVarint32(&fn.num_params) ||
        !reader.GetVarint32(&fn.num_locals) || !reader.GetVarint32(&fn.num_results) ||
        !reader.GetBytes(1, &exported) || !reader.GetVarint32(&code_len) ||
        code_len > kMaxCodeLength) {
      return Status::Corruption("bad function header");
    }
    fn.name.assign(name);
    fn.exported = exported[0] != 0;
    fn.code.reserve(code_len);
    for (uint32_t j = 0; j < code_len; j++) {
      std::string_view op_byte;
      if (!reader.GetBytes(1, &op_byte)) return Status::Corruption("truncated code");
      Instruction instr;
      instr.op = static_cast<Op>(static_cast<uint8_t>(op_byte[0]));
      if (instr.op >= Op::kOpCount) return Status::Corruption("bad opcode");
      if (OpHasImmediate(instr.op) && !reader.GetVarint64(&instr.imm)) {
        return Status::Corruption("truncated immediate");
      }
      fn.code.push_back(instr);
    }
    functions.push_back(std::move(fn));
  }
  uint32_t num_segments = 0;
  if (!reader.GetVarint32(&num_segments)) return Status::Corruption("bad data count");
  std::vector<DataSegment> data;
  for (uint32_t i = 0; i < num_segments; i++) {
    DataSegment segment;
    std::string_view seg_bytes;
    if (!reader.GetVarint64(&segment.offset) || !reader.GetLengthPrefixed(&seg_bytes)) {
      return Status::Corruption("bad data segment");
    }
    segment.bytes.assign(seg_bytes);
    data.push_back(std::move(segment));
  }
  if (!reader.empty()) return Status::Corruption("trailing bytes in module");
  return Create(std::move(functions), std::move(data), min_memory);
}

}  // namespace lo::vm
