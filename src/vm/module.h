// LambdaVM module: functions + data segments, with a binary wire format
// (the "uploaded function binary" of the paper) and a load-time validator
// that rejects out-of-range branches, locals, calls and data segments
// before anything executes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "vm/isa.h"

namespace lo::vm {

struct Instruction {
  Op op = Op::kNop;
  uint64_t imm = 0;
};

struct Function {
  std::string name;
  uint32_t num_params = 0;
  uint32_t num_locals = 0;   // additional to params
  uint32_t num_results = 0;  // 0 or 1
  bool exported = false;     // callable from outside (public methods)
  std::vector<Instruction> code;
};

/// Bytes copied into linear memory at instantiation (string constants).
struct DataSegment {
  uint64_t offset = 0;
  std::string bytes;
};

class Module {
 public:
  /// Validates and freezes the module. Checks: branch targets, local
  /// and function indices, result arity, data segments within memory,
  /// terminating code paths.
  static Result<Module> Create(std::vector<Function> functions,
                               std::vector<DataSegment> data,
                               uint64_t min_memory = 64 * 1024);

  const std::vector<Function>& functions() const { return functions_; }
  const std::vector<DataSegment>& data() const { return data_; }
  uint64_t min_memory() const { return min_memory_; }

  /// Index of the exported function `name`, or NotFound.
  Result<uint32_t> FindExport(std::string_view name) const;
  const Function& function(uint32_t index) const { return functions_[index]; }

  /// Binary codec ("ELF binary" stand-in). Deserialize re-validates.
  std::string Serialize() const;
  static Result<Module> Deserialize(std::string_view bytes);

 private:
  Module() = default;

  std::vector<Function> functions_;
  std::vector<DataSegment> data_;
  uint64_t min_memory_ = 0;
  std::map<std::string, uint32_t, std::less<>> exports_;
};

}  // namespace lo::vm
