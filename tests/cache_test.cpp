// Tests for the sharded LRU cache (storage/cache.h): charge accounting,
// LRU order, shard independence, the pin-while-evicted lifetime contract,
// and a multi-threaded hammer (the interesting run is under TSan via the
// `concurrency` label).
#include "storage/cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lo::storage {
namespace {

// Deleters are plain function pointers, so destruction is observed
// through globals (reset per test).
std::atomic<int> g_deletions{0};
std::atomic<uint64_t> g_deleted_value_sum{0};

void CountingDeleter(std::string_view /*key*/, void* value) {
  g_deletions.fetch_add(1);
  g_deleted_value_sum.fetch_add(*static_cast<uint64_t*>(value));
  delete static_cast<uint64_t*>(value);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_deletions = 0;
    g_deleted_value_sum = 0;
  }

  // Insert-and-unpin: the common "populate" shape.
  static void Put(Cache* cache, std::string_view key, uint64_t value,
                  size_t charge) {
    cache->Release(
        cache->Insert(key, new uint64_t(value), charge, &CountingDeleter));
  }

  // Returns the value for `key`, or -1 on miss.
  static int64_t Get(Cache* cache, std::string_view key) {
    Cache::Handle* handle = cache->Lookup(key);
    if (handle == nullptr) return -1;
    auto value = static_cast<int64_t>(*static_cast<uint64_t*>(Cache::Value(handle)));
    cache->Release(handle);
    return value;
  }
};

TEST_F(CacheTest, InsertLookupErase) {
  Cache cache(/*capacity=*/1024, /*shard_bits=*/0);
  EXPECT_EQ(Get(&cache, "a"), -1);
  Put(&cache, "a", 1, 10);
  Put(&cache, "b", 2, 10);
  EXPECT_EQ(Get(&cache, "a"), 1);
  EXPECT_EQ(Get(&cache, "b"), 2);
  cache.Erase("a");
  EXPECT_EQ(Get(&cache, "a"), -1);
  EXPECT_EQ(Get(&cache, "b"), 2);
  EXPECT_EQ(g_deletions.load(), 1);

  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charge, 10u);
  EXPECT_EQ(stats.inserts, 2u);
}

TEST_F(CacheTest, ChargeAccountingDrivesEviction) {
  Cache cache(/*capacity=*/100, /*shard_bits=*/0);
  Put(&cache, "a", 1, 40);
  Put(&cache, "b", 2, 40);
  EXPECT_EQ(cache.GetStats().charge, 80u);
  // 40 + 40 + 40 > 100: the cold entry goes.
  Put(&cache, "c", 3, 40);
  EXPECT_EQ(Get(&cache, "a"), -1);
  EXPECT_EQ(Get(&cache, "b"), 2);
  EXPECT_EQ(Get(&cache, "c"), 3);
  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.charge, 80u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(g_deletions.load(), 1);
  EXPECT_EQ(g_deleted_value_sum.load(), 1u);

  // One entry heavier than the whole cache still gets admitted (it is the
  // only way to serve it) and evicts everything else.
  Put(&cache, "huge", 4, 500);
  EXPECT_EQ(Get(&cache, "b"), -1);
  EXPECT_EQ(Get(&cache, "c"), -1);
  EXPECT_EQ(Get(&cache, "huge"), 4);
}

TEST_F(CacheTest, LruOrderRespectsUse) {
  Cache cache(/*capacity=*/3, /*shard_bits=*/0);
  Put(&cache, "a", 1, 1);
  Put(&cache, "b", 2, 1);
  Put(&cache, "c", 3, 1);
  // Touch "a": "b" becomes the coldest.
  EXPECT_EQ(Get(&cache, "a"), 1);
  Put(&cache, "d", 4, 1);
  EXPECT_EQ(Get(&cache, "b"), -1);
  EXPECT_EQ(Get(&cache, "a"), 1);
  EXPECT_EQ(Get(&cache, "c"), 3);
  EXPECT_EQ(Get(&cache, "d"), 4);
}

TEST_F(CacheTest, InsertReplacesSameKey) {
  Cache cache(/*capacity=*/100, /*shard_bits=*/0);
  Put(&cache, "a", 1, 30);
  Put(&cache, "a", 2, 50);
  EXPECT_EQ(Get(&cache, "a"), 2);
  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charge, 50u);
  // The replaced value died; replacement is not an eviction.
  EXPECT_EQ(g_deletions.load(), 1);
  EXPECT_EQ(g_deleted_value_sum.load(), 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST_F(CacheTest, ShardsAreIndependent) {
  Cache cache(/*capacity=*/40, /*shard_bits=*/2);
  ASSERT_EQ(cache.num_shards(), 4);
  // Craft keys per shard (ShardOf is exposed for exactly this).
  std::vector<std::string> shard0, shard1;
  for (int i = 0; shard0.size() < 8 || shard1.size() < 8; i++) {
    std::string key = "key" + std::to_string(i);
    if (cache.ShardOf(key) == 0 && shard0.size() < 8) shard0.push_back(key);
    if (cache.ShardOf(key) == 1 && shard1.size() < 8) shard1.push_back(key);
  }
  // Each shard's slice is 10. Two resident entries per shard:
  Put(&cache, shard1[0], 100, 5);
  Put(&cache, shard1[1], 101, 5);
  // Overflowing shard 0 must not evict anything from shard 1.
  for (size_t i = 0; i < shard0.size(); i++) {
    Put(&cache, shard0[i], i, 5);
  }
  EXPECT_GT(cache.GetStats().evictions, 0u);
  EXPECT_EQ(Get(&cache, shard1[0]), 100);
  EXPECT_EQ(Get(&cache, shard1[1]), 101);
}

TEST_F(CacheTest, PinnedEntryIsUnevictable) {
  Cache cache(/*capacity=*/10, /*shard_bits=*/0);
  Cache::Handle* pin = cache.Insert("a", new uint64_t(1), 5, &CountingDeleter);
  // Charge pressure cannot touch a pinned entry: it stays attached and
  // served even while the shard is over capacity.
  Put(&cache, "b", 2, 10);
  EXPECT_EQ(*static_cast<uint64_t*>(Cache::Value(pin)), 1u);
  EXPECT_EQ(Get(&cache, "a"), 1);
  cache.Release(pin);
  // Unpinned now; the next insert's eviction pass reclaims it.
  Put(&cache, "c", 3, 10);
  EXPECT_EQ(Get(&cache, "a"), -1);
  EXPECT_EQ(g_deleted_value_sum.load() & 1u, 1u);  // "a"'s value died
}

TEST_F(CacheTest, PinnedEntrySurvivesReplacement) {
  Cache cache(/*capacity=*/100, /*shard_bits=*/0);
  Cache::Handle* pin = cache.Insert("a", new uint64_t(1), 5, &CountingDeleter);
  // Same-key insert detaches the pinned entry; the pin keeps the old
  // value alive while new lookups already see the replacement.
  Put(&cache, "a", 2, 5);
  EXPECT_EQ(Get(&cache, "a"), 2);
  EXPECT_EQ(*static_cast<uint64_t*>(Cache::Value(pin)), 1u);
  EXPECT_EQ(g_deletions.load(), 0);
  cache.Release(pin);
  EXPECT_EQ(g_deletions.load(), 1);
  EXPECT_EQ(g_deleted_value_sum.load(), 1u);
}

TEST_F(CacheTest, PinnedEntrySurvivesErase) {
  Cache cache(/*capacity=*/100, /*shard_bits=*/0);
  Cache::Handle* pin = cache.Insert("a", new uint64_t(7), 5, &CountingDeleter);
  cache.Erase("a");
  EXPECT_EQ(Get(&cache, "a"), -1);
  EXPECT_EQ(*static_cast<uint64_t*>(Cache::Value(pin)), 7u);
  EXPECT_EQ(g_deletions.load(), 0);
  cache.Release(pin);
  EXPECT_EQ(g_deletions.load(), 1);
}

TEST_F(CacheTest, PinnedEntriesAreUnevictableUntilReleased) {
  Cache cache(/*capacity=*/10, /*shard_bits=*/0);
  // Pin 3x the capacity: nothing can be evicted, usage overshoots.
  std::vector<Cache::Handle*> pins;
  for (int i = 0; i < 3; i++) {
    pins.push_back(cache.Insert("p" + std::to_string(i), new uint64_t(i), 10,
                                &CountingDeleter));
  }
  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.charge, 30u);
  EXPECT_EQ(stats.pinned, 3u);
  EXPECT_EQ(g_deletions.load(), 0);
  // Releasing drains the overage: each entry re-enters the LRU list and
  // the over-capacity pass reclaims down to the newest release.
  for (Cache::Handle* pin : pins) cache.Release(pin);
  stats = cache.GetStats();
  EXPECT_LE(stats.charge, 10u);
  EXPECT_EQ(stats.pinned, 0u);
  EXPECT_EQ(g_deletions.load(), 2);
}

TEST_F(CacheTest, StatsCountHitsAndMisses) {
  Cache cache(/*capacity=*/100, /*shard_bits=*/1);
  Put(&cache, "a", 1, 1);
  EXPECT_EQ(Get(&cache, "a"), 1);
  EXPECT_EQ(Get(&cache, "a"), 1);
  EXPECT_EQ(Get(&cache, "nope"), -1);
  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(CacheTest, NewIdIsUnique) {
  Cache cache(/*capacity=*/100);
  uint64_t a = cache.NewId();
  uint64_t b = cache.NewId();
  EXPECT_NE(a, b);
}

TEST_F(CacheTest, MultiThreadedHammer) {
  // 8 threads × mixed insert/lookup/erase traffic on a deliberately tiny
  // cache, so evictions, replacements and pin hand-offs race constantly.
  // Correctness checks are light here — the real assertions are TSan and
  // the deleter balance below.
  Cache cache(/*capacity=*/512, /*shard_bits=*/2);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<uint64_t> live_value_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, &live_value_sum, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (int op = 0; op < kOpsPerThread; op++) {
        std::string key = "k" + std::to_string(next() % 64);
        switch (next() % 4) {
          case 0:
            cache.Release(cache.Insert(key, new uint64_t(next() % 1000), 16,
                                       &CountingDeleter));
            break;
          case 1:
          case 2: {
            Cache::Handle* handle = cache.Lookup(key);
            if (handle != nullptr) {
              // Read through the pin: TSan flags any lifetime race.
              live_value_sum.fetch_add(
                  *static_cast<uint64_t*>(Cache::Value(handle)));
              cache.Release(handle);
            }
            break;
          }
          case 3:
            cache.Erase(key);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every insert's value must die exactly once: the ones already deleted
  // plus the ones still attached account for all inserts.
  Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.inserts,
            static_cast<uint64_t>(g_deletions.load()) + stats.entries);
  EXPECT_EQ(stats.pinned, 0u);
  EXPECT_LE(stats.charge, cache.capacity());
}

}  // namespace
}  // namespace lo::storage
