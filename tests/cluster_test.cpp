// Integration tests: the full aggregated LambdaStore deployment and the
// disaggregated baseline running the ReTwis application end-to-end,
// including primary failover under load and microshard migration.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "baseline/deployment.h"
#include "cluster/deployment.h"
#include "common/coding.h"
#include "retwis/driver.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"

namespace lo::cluster {
namespace {

using sim::Detach;
using sim::Task;

class AggregatedRetwisTest : public ::testing::Test {
 public:
  AggregatedRetwisTest() {
    EXPECT_TRUE(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
    DeploymentOptions options;
    deployment_ = std::make_unique<AggregatedDeployment>(sim_, &types_, options);
    deployment_->WaitUntilReady();
    client_ = &deployment_->NewClient();
  }

  Result<std::string> Invoke(const std::string& oid, const std::string& method,
                             const std::string& arg = "") {
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](Client* client, std::string oid, std::string method,
              std::string arg, Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await client->Invoke(std::move(oid), std::move(method),
                                     std::move(arg));
      *done = true;
    }(client_, oid, method, arg, &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  Result<std::string> Create(const std::string& oid) {
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](Client* client, std::string oid, Result<std::string>* out,
              bool* done) -> Task<void> {
      *out = co_await client->Create(std::move(oid), "user");
      *done = true;
    }(client_, oid, &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  sim::Simulator sim_{23};
  runtime::TypeRegistry types_;
  std::unique_ptr<AggregatedDeployment> deployment_;
  Client* client_ = nullptr;
};

TEST_F(AggregatedRetwisTest, EndToEndPostAndTimeline) {
  ASSERT_TRUE(Create("user/alice").ok());
  ASSERT_TRUE(Create("user/bob").ok());
  ASSERT_TRUE(Invoke("user/alice", "init", "alice").ok());
  ASSERT_TRUE(Invoke("user/bob", "init", "bob").ok());
  // bob follows alice.
  ASSERT_TRUE(Invoke("user/alice", "follow", "user/bob").ok());
  // alice posts; the post must land on bob's timeline too.
  auto posted = Invoke("user/alice", "create_post", "hello world");
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();

  auto timeline = Invoke("user/bob", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  auto posts = retwis::DecodeTimeline(*timeline);
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 1u);
  EXPECT_EQ((*posts)[0].author, "alice");
  EXPECT_EQ((*posts)[0].message, "hello world");

  // alice sees her own post as well.
  auto own = Invoke("user/alice", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(own.ok());
  auto own_posts = retwis::DecodeTimeline(*own);
  ASSERT_TRUE(own_posts.ok());
  ASSERT_EQ(own_posts->size(), 1u);
}

TEST_F(AggregatedRetwisTest, TimelineOrderNewestFirst) {
  ASSERT_TRUE(Create("user/u").ok());
  ASSERT_TRUE(Invoke("user/u", "init", "u").ok());
  for (int i = 0; i < 15; i++) {
    ASSERT_TRUE(Invoke("user/u", "create_post", "msg" + std::to_string(i)).ok());
  }
  auto timeline = Invoke("user/u", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(timeline.ok());
  auto posts = retwis::DecodeTimeline(*timeline);
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 10u);  // limited
  EXPECT_EQ((*posts)[0].message, "msg14");
  EXPECT_EQ((*posts)[9].message, "msg5");
}

TEST_F(AggregatedRetwisTest, WritesReplicateToBackups) {
  ASSERT_TRUE(Create("user/x").ok());
  ASSERT_TRUE(Invoke("user/x", "init", "x").ok());
  sim_.RunFor(sim::Millis(10));
  // Every storage node holds the object (replica set of 3).
  for (int i = 0; i < deployment_->num_nodes(); i++) {
    auto got = deployment_->node(i).db().Get({}, runtime::ObjectExistsKey("user/x"));
    EXPECT_TRUE(got.ok()) << "node " << i;
  }
}

TEST_F(AggregatedRetwisTest, FailoverPromotesBackupAndClientRetries) {
  ASSERT_TRUE(Create("user/f").ok());
  ASSERT_TRUE(Invoke("user/f", "init", "f").ok());

  deployment_->KillStorageNode(0);  // primary dies
  sim_.RunFor(sim::Millis(300));    // coordinator detects + reconfigures

  // The client's next request must succeed after refresh+retry against
  // the promoted backup.
  auto after = Invoke("user/f", "create_post", "post after failover");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto timeline = Invoke("user/f", "get_timeline", retwis::EncodeU64(5));
  ASSERT_TRUE(timeline.ok());
  auto posts = retwis::DecodeTimeline(*timeline);
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 1u);
  EXPECT_EQ((*posts)[0].message, "post after failover");
  EXPECT_GT(client_->metrics().retries, 0u);
}

TEST_F(AggregatedRetwisTest, ResultCacheServesRepeatedTimelines) {
  ASSERT_TRUE(Create("user/c").ok());
  ASSERT_TRUE(Invoke("user/c", "init", "c").ok());
  ASSERT_TRUE(Invoke("user/c", "create_post", "cached?").ok());
  ASSERT_TRUE(Invoke("user/c", "get_timeline", retwis::EncodeU64(10)).ok());
  auto& primary_runtime = deployment_->node(0).runtime();
  auto before = primary_runtime.cache_stats();
  ASSERT_TRUE(Invoke("user/c", "get_timeline", retwis::EncodeU64(10)).ok());
  auto after = primary_runtime.cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  // A new post invalidates; next read recomputes and sees it.
  ASSERT_TRUE(Invoke("user/c", "create_post", "newer").ok());
  auto timeline = Invoke("user/c", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(timeline.ok());
  auto posts = retwis::DecodeTimeline(*timeline);
  ASSERT_TRUE(posts.ok());
  EXPECT_EQ((*posts)[0].message, "newer");
}

// Kills the primary mid-way through a sequential post stream and checks
// the linearizability contract end to end: every acknowledged post
// appears in the final timeline exactly once, no post (acked or not)
// appears twice — client retries carry idempotency tokens, so a retry
// that races a successful-but-unacked commit must not double-apply —
// and the whole failure schedule replays identically under one seed.
TEST(FailoverLinearizability, AckedPostsSurvivePrimaryKillExactlyOnce) {
  struct Outcome {
    std::vector<std::string> acked;
    std::vector<std::string> timeline;  // newest first
    uint64_t retries = 0;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [](uint64_t seed) {
    sim::Simulator sim(seed);
    runtime::TypeRegistry types;
    EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
    AggregatedDeployment deployment(sim, &types, DeploymentOptions{});
    deployment.WaitUntilReady();
    Client& client = deployment.NewClient();

    bool ready = false;
    Detach([](Client* c, bool* done) -> Task<void> {
      auto created = co_await c->Create("user/lin", "user");
      EXPECT_TRUE(created.ok());
      auto inited = co_await c->Invoke("user/lin", "init", "lin");
      EXPECT_TRUE(inited.ok());
      *done = true;
    }(&client, &ready));
    while (!ready) EXPECT_TRUE(sim.Step());

    // The bootstrap primary of the (single) shard dies mid-stream.
    Detach([](sim::Simulator* s, AggregatedDeployment* d) -> Task<void> {
      co_await s->Sleep(sim::Millis(2));
      d->KillStorageNode(0);
    }(&sim, &deployment));

    Outcome out;
    bool done = false;
    Detach([](Client* c, Outcome* out, bool* done) -> Task<void> {
      for (int i = 0; i < 40; i++) {
        std::string msg = "post-" + std::to_string(i);
        auto reply = co_await c->Invoke("user/lin", "create_post", msg);
        if (reply.ok()) out->acked.push_back(msg);
      }
      *done = true;
    }(&client, &out, &done));
    while (!done) EXPECT_TRUE(sim.Step());
    sim.RunFor(sim::Millis(500));  // failover fully settles

    bool read = false;
    Detach([](Client* c, Outcome* out, bool* done) -> Task<void> {
      auto timeline = co_await c->Invoke("user/lin", "get_timeline",
                                         retwis::EncodeU64(100));
      EXPECT_TRUE(timeline.ok()) << timeline.status().ToString();
      if (timeline.ok()) {
        auto posts = retwis::DecodeTimeline(*timeline);
        EXPECT_TRUE(posts.ok());
        if (posts.ok()) {
          for (const auto& post : *posts) out->timeline.push_back(post.message);
        }
      }
      *done = true;
    }(&client, &out, &read));
    while (!read) EXPECT_TRUE(sim.Step());
    out.retries = client.metrics().retries;
    return out;
  };

  Outcome first = run(101);
  // The kill genuinely interrupted the stream.
  EXPECT_GT(first.retries, 0u);
  EXPECT_FALSE(first.acked.empty());
  std::map<std::string, int> seen;
  for (const auto& msg : first.timeline) seen[msg]++;
  for (const auto& msg : first.acked) {
    EXPECT_EQ(seen[msg], 1) << "acked post lost or duplicated: " << msg;
  }
  for (const auto& [msg, count] : seen) {
    EXPECT_LE(count, 1) << "double-applied post: " << msg;
  }
  // Same seed, same failure schedule, same outcome — bit for bit.
  EXPECT_TRUE(first == run(101)) << "fault schedule is not replayable";
}

// The commit-side half of the guarantee, deterministically: replaying an
// invocation with the same idempotency token must hit the applied-marker
// and skip the second commit.
TEST(IdempotentCommit, SameTokenCommitsOnce) {
  sim::Simulator sim(53);
  runtime::TypeRegistry types;
  ASSERT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  AggregatedDeployment deployment(sim, &types, DeploymentOptions{});
  deployment.WaitUntilReady();
  Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    Detach([](std::decay_t<decltype(coroutine)> body, bool* done) -> Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) ASSERT_TRUE(sim.Step());
  };

  run([&]() -> Task<void> {
    EXPECT_TRUE((co_await client.Create("user/idem", "user")).ok());
    EXPECT_TRUE((co_await client.Invoke("user/idem", "init", "idem")).ok());
  });

  auto& primary = deployment.node(0);
  uint64_t skips_before = primary.runtime().metrics().dedup_commit_skips;
  run([&]() -> Task<void> {
    // A lost reply makes the client resend; both executions reach commit.
    auto first = co_await primary.InvokeLocal("user/idem", "create_post",
                                              "only once", {}, "tok-1");
    EXPECT_TRUE(first.ok()) << first.status().ToString();
    auto retry = co_await primary.InvokeLocal("user/idem", "create_post",
                                              "only once", {}, "tok-1");
    EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  });
  EXPECT_EQ(primary.runtime().metrics().dedup_commit_skips, skips_before + 1);

  run([&]() -> Task<void> {
    auto timeline = co_await client.Invoke("user/idem", "get_timeline",
                                           retwis::EncodeU64(10));
    EXPECT_TRUE(timeline.ok());
    if (!timeline.ok()) co_return;
    auto posts = retwis::DecodeTimeline(*timeline);
    EXPECT_TRUE(posts.ok());
    if (posts.ok()) {
      EXPECT_EQ(posts->size(), 1u);  // the retried commit was deduplicated
    }
  });
}

TEST(MigrationTest, ObjectMovesBetweenShards) {
  sim::Simulator sim(29);
  runtime::TypeRegistry types;
  ASSERT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  DeploymentOptions options;
  options.num_storage_nodes = 3;
  options.num_shards = 3;  // one primary per node
  AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    Detach([](std::decay_t<decltype(coroutine)> body, bool* done) -> Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) ASSERT_TRUE(sim.Step());
  };

  std::string oid = "user/mig";
  run([&]() -> Task<void> {
    auto created = co_await client.Create(oid, "user");
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    auto inited = co_await client.Invoke(oid, "init", "mig");
    EXPECT_TRUE(inited.ok());
    auto posted = co_await client.Invoke(oid, "create_post", "pre-migration");
    EXPECT_TRUE(posted.ok());
  });

  coord::ShardId home = deployment.node(0).shard_map().ShardFor(oid);
  coord::ShardId target = (home + 1) % 3;
  run([&]() -> Task<void> {
    Status s = co_await client.MigrateObject(oid, target);
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  sim.RunFor(sim::Millis(100));  // config propagation to nodes

  // Data survived the move and the object serves from its new home.
  run([&]() -> Task<void> {
    auto timeline = co_await client.Invoke(oid, "get_timeline",
                                           retwis::EncodeU64(10));
    EXPECT_TRUE(timeline.ok()) << timeline.status().ToString();
    if (timeline.ok()) {
      auto posts = retwis::DecodeTimeline(*timeline);
      EXPECT_TRUE(posts.ok());
      if (posts.ok()) {
        EXPECT_EQ(posts->size(), 1u);
      }
    }
    auto posted = co_await client.Invoke(oid, "create_post", "post-migration");
    EXPECT_TRUE(posted.ok());
  });
}

// ------------------------------------------------------- disaggregated

class BaselineRetwisTest : public ::testing::Test {
 public:
  BaselineRetwisTest() {
    EXPECT_TRUE(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
    baseline::BaselineOptions options;
    deployment_ =
        std::make_unique<baseline::DisaggregatedDeployment>(sim_, &types_, options);
    client_ = &deployment_->NewClientEndpoint();
  }

  Result<std::string> Invoke(const std::string& oid, const std::string& method,
                             const std::string& arg = "") {
    std::string payload;
    PutLengthPrefixed(&payload, oid);
    PutLengthPrefixed(&payload, method);
    PutLengthPrefixed(&payload, arg);
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId entry, const char* service,
              std::string payload, Result<std::string>* out,
              bool* done) -> Task<void> {
      *out = co_await rpc->Call(entry, service, std::move(payload), sim::Seconds(2));
      *done = true;
    }(client_, deployment_->entry_node(), deployment_->entry_service(),
      std::move(payload), &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  Result<std::string> Create(const std::string& oid) {
    std::string payload;
    PutLengthPrefixed(&payload, oid);
    PutLengthPrefixed(&payload, "user");
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await rpc->Call(compute, "fn.create", std::move(payload),
                                sim::Seconds(1));
      *done = true;
    }(client_, deployment_->compute(0).id(), std::move(payload), &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  sim::Simulator sim_{31};
  runtime::TypeRegistry types_;
  std::unique_ptr<baseline::DisaggregatedDeployment> deployment_;
  sim::RpcEndpoint* client_ = nullptr;
};

TEST_F(BaselineRetwisTest, EndToEndPostAndTimeline) {
  ASSERT_TRUE(Create("user/alice").ok());
  ASSERT_TRUE(Create("user/bob").ok());
  ASSERT_TRUE(Invoke("user/alice", "init", "alice").ok());
  ASSERT_TRUE(Invoke("user/bob", "init", "bob").ok());
  ASSERT_TRUE(Invoke("user/alice", "follow", "user/bob").ok());
  auto posted = Invoke("user/alice", "create_post", "hello from baseline");
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  auto timeline = Invoke("user/bob", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  auto posts = retwis::DecodeTimeline(*timeline);
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 1u);
  EXPECT_EQ((*posts)[0].author, "alice");
  EXPECT_EQ((*posts)[0].message, "hello from baseline");
  // Disaggregation tax: many storage round-trips for this tiny workload.
  EXPECT_GT(deployment_->compute(0).metrics().storage_round_trips, 10u);
}

TEST_F(BaselineRetwisTest, DataIsOnStorageNodesNotCompute) {
  ASSERT_TRUE(Create("user/z").ok());
  ASSERT_TRUE(Invoke("user/z", "init", "z").ok());
  sim_.RunFor(sim::Millis(10));
  auto on_storage =
      deployment_->storage(0).db().Get({}, runtime::ObjectExistsKey("user/z"));
  EXPECT_TRUE(on_storage.ok());
  // And replicated within the storage replica set.
  auto on_backup =
      deployment_->storage(1).db().Get({}, runtime::ObjectExistsKey("user/z"));
  EXPECT_TRUE(on_backup.ok());
}

TEST(BaselineLoadBalancer, RoutesAndLogsRequests) {
  sim::Simulator sim(37);
  runtime::TypeRegistry types;
  ASSERT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  baseline::BaselineOptions options;
  options.with_load_balancer = true;
  options.num_compute_nodes = 2;
  baseline::DisaggregatedDeployment deployment(sim, &types, options);
  auto& client = deployment.NewClientEndpoint();

  auto invoke = [&](const std::string& oid, const std::string& method,
                    const std::string& arg) {
    std::string payload;
    PutLengthPrefixed(&payload, oid);
    PutLengthPrefixed(&payload, method);
    PutLengthPrefixed(&payload, arg);
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId lb, std::string payload,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await rpc->Call(lb, "lb.invoke", std::move(payload), sim::Seconds(2));
      *done = true;
    }(&client, deployment.entry_node(), std::move(payload), &out, &done));
    while (!done) EXPECT_TRUE(sim.Step());
    return out;
  };

  // Create through compute 0 directly, then invoke through the LB.
  {
    std::string payload;
    PutLengthPrefixed(&payload, "user/lb");
    PutLengthPrefixed(&payload, "user");
    bool done = false;
    Result<std::string> out = Status::Unavailable("");
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await rpc->Call(compute, "fn.create", std::move(payload),
                                sim::Seconds(1));
      *done = true;
    }(&client, deployment.compute(0).id(), std::move(payload), &out, &done));
    while (!done) ASSERT_TRUE(sim.Step());
    ASSERT_TRUE(out.ok());
  }
  ASSERT_TRUE(invoke("user/lb", "init", "lb").ok());
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(invoke("user/lb", "create_post", "p" + std::to_string(i)).ok());
  }
  auto& lb = *deployment.load_balancer();
  EXPECT_EQ(lb.metrics().requests, 7u);
  EXPECT_EQ(lb.metrics().log_appends, 7u);
  EXPECT_EQ(lb.log().size(), 7u);
  // Both compute nodes served work (round-robin).
  EXPECT_GT(deployment.compute(0).metrics().invocations, 0u);
  EXPECT_GT(deployment.compute(1).metrics().invocations, 0u);
}


TEST(BaselineLoadBalancer, RetriesOnComputeNodeFailure) {
  sim::Simulator sim(41);
  runtime::TypeRegistry types;
  ASSERT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  baseline::BaselineOptions options;
  options.with_load_balancer = true;
  options.num_compute_nodes = 2;
  baseline::DisaggregatedDeployment deployment(sim, &types, options);
  auto& client = deployment.NewClientEndpoint();

  // Create the object via the surviving compute node (id 31).
  {
    std::string payload;
    PutLengthPrefixed(&payload, "user/ha");
    PutLengthPrefixed(&payload, "user");
    bool done = false;
    Result<std::string> out = Status::Unavailable("");
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await rpc->Call(compute, "fn.create", std::move(payload),
                                sim::Seconds(1));
      *done = true;
    }(&client, deployment.compute(1).id(), std::move(payload), &out, &done));
    while (!done) ASSERT_TRUE(sim.Step());
    ASSERT_TRUE(out.ok());
  }

  // Kill compute 0; the LB's round-robin will hit it and must fail over.
  deployment.network().SetNodeUp(deployment.compute(0).id(), false);
  int ok_count = 0;
  for (int i = 0; i < 4; i++) {
    std::string payload;
    PutLengthPrefixed(&payload, "user/ha");
    PutLengthPrefixed(&payload, "init");
    PutLengthPrefixed(&payload, "ha");
    bool done = false;
    Result<std::string> out = Status::Unavailable("");
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId lb, std::string payload,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await rpc->Call(lb, "lb.invoke", std::move(payload),
                                sim::Seconds(5));
      *done = true;
    }(&client, deployment.entry_node(), std::move(payload), &out, &done));
    while (!done) ASSERT_TRUE(sim.Step());
    if (out.ok()) ok_count++;
  }
  EXPECT_EQ(ok_count, 4);  // every request served despite the dead node
  EXPECT_GT(deployment.load_balancer()->metrics().retries_on_compute_failure, 0u);
  // The durable request log captured everything (no request lost).
  EXPECT_EQ(deployment.load_balancer()->log().size(), 4u);
}


TEST(ReplicaReads, BackupsServeReadOnlyInvocations) {
  sim::Simulator sim(47);
  runtime::TypeRegistry types;
  ASSERT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  DeploymentOptions options;
  options.node.serve_reads_as_backup = true;
  AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    Detach([](std::decay_t<decltype(coroutine)> body, bool* done) -> Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) ASSERT_TRUE(sim.Step());
  };

  run([&]() -> Task<void> {
    (void)co_await client.Create("user/r", "user");
    (void)co_await client.Invoke("user/r", "init", "r");
    (void)co_await client.Invoke("user/r", "create_post", "replicated post");
  });
  sim.RunFor(sim::Millis(5));  // replication settles

  // Spread timeline reads across replicas; all must return the post.
  run([&]() -> Task<void> {
    for (int i = 0; i < 30; i++) {
      auto timeline = co_await client.InvokeReadAny("user/r", "get_timeline",
                                                    retwis::EncodeU64(5));
      EXPECT_TRUE(timeline.ok()) << timeline.status().ToString();
      if (timeline.ok()) {
        auto posts = retwis::DecodeTimeline(*timeline);
        EXPECT_TRUE(posts.ok());
        if (posts.ok()) EXPECT_EQ(posts->size(), 1u);
      }
    }
  });
  // Both backups actually served work.
  EXPECT_GT(deployment.node(1).metrics().invokes_served, 0u);
  EXPECT_GT(deployment.node(2).metrics().invokes_served, 0u);

  // Mutations routed to a backup are rejected, not silently applied.
  run([&]() -> Task<void> {
    // Force a direct call at a backup: the runtime itself must refuse.
    auto reply = co_await client.InvokeReadAny("user/r", "create_post", "nope");
    // Either a backup bounced it (WrongNode -> fallback to primary, OK)
    // or the primary served it; both are safe. The invariant: no
    // *divergent* write on a backup, checked below via replication seq.
    (void)reply;
  });
  EXPECT_EQ(deployment.node(1).replicator().applied_seq(0),
            deployment.node(0).replicator().applied_seq(0));
}

// --- ShardMap routing ---------------------------------------------------

TEST(ShardMapTest, DirectoryOverrideWinsOverHash) {
  coord::ClusterState state;
  for (coord::ShardId shard = 0; shard < 4; shard++) {
    coord::ShardConfig config;
    config.epoch = 1;
    config.primary = static_cast<sim::NodeId>(10 + shard);
    state.shards[shard] = config;
  }
  ShardMap hashed(state);
  const std::string oid = "user/alice";
  coord::ShardId hash_shard = hashed.ShardFor(oid);
  // Pin the object somewhere the hash would NOT put it.
  coord::ShardId pinned = (hash_shard + 1) % 4;
  state.directory[oid] = pinned;
  ShardMap map(state);
  EXPECT_EQ(map.ShardFor(oid), pinned);
  EXPECT_EQ(map.PrimaryFor(oid), static_cast<sim::NodeId>(10 + pinned));
  // Objects without a directory entry still hash.
  EXPECT_EQ(map.ShardFor("user/bob"), hashed.ShardFor("user/bob"));
}

TEST(ShardMapTest, EmptyMapRoutesToZero) {
  ShardMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.ShardFor("user/anyone"), 0u);
  EXPECT_EQ(map.PrimaryFor("user/anyone"), 0u);  // "unknown" sentinel
  // A directory entry pointing at a missing shard must not crash either.
  coord::ClusterState state;
  state.directory["user/ghost"] = 9;
  ShardMap dangling(state);
  EXPECT_EQ(dangling.ShardFor("user/ghost"), 9u);
  EXPECT_EQ(dangling.PrimaryFor("user/ghost"), 0u);
}

}  // namespace
}  // namespace lo::cluster
