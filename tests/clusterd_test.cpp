// Multi-process cluster tests: coordinator + lambdastore-server
// processes over loopback TCP, driven through clusterd::Client. Covers
// directory routing across nodes, kWrongShard redirects, live object
// migration under concurrent writers (no acked commit lost or
// duplicated), the kill-a-server-during-migration fault path, and the
// SIGTERM graceful-drain contract of the server binary.
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clusterd/client.h"
#include "clusterd/wire.h"
#include "common/coding.h"
#include "common/hash.h"
#include "net/rpc_client.h"
#include "retwis/retwis.h"

extern char** environ;

namespace lo::clusterd {
namespace {

std::string ServerBinary() {
  if (const char* env = std::getenv("LO_SERVER_BIN")) return env;
#ifdef LO_SERVER_BIN_DEFAULT
  return LO_SERVER_BIN_DEFAULT;
#else
  return "";
#endif
}

std::string CoordinatorBinary() {
  if (const char* env = std::getenv("LO_COORD_BIN")) return env;
#ifdef LO_COORD_BIN_DEFAULT
  return LO_COORD_BIN_DEFAULT;
#else
  return "";
#endif
}

// A spawned cluster process. SIGKILLed + reaped on destruction unless
// already waited for.
struct Proc {
  pid_t pid = -1;
  int out_fd = -1;
  uint16_t port = 0;

  Proc() = default;
  Proc(Proc&& other) noexcept { *this = std::move(other); }
  Proc& operator=(Proc&& other) noexcept {
    std::swap(pid, other.pid);
    std::swap(out_fd, other.out_fd);
    std::swap(port, other.port);
    return *this;
  }
  ~Proc() { Kill(); }

  void Kill() {
    if (out_fd >= 0) {
      close(out_fd);
      out_fd = -1;
    }
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  /// Waits for exit (up to ~10s) and returns the raw waitpid status.
  int Wait() {
    int status = -1;
    for (int i = 0; i < 200; i++) {
      if (waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return -1;
  }
  std::string address() const { return "127.0.0.1:" + std::to_string(port); }
};

Proc SpawnDaemon(const std::string& binary, std::vector<std::string> args) {
  args.insert(args.begin(), binary);
  int out_pipe[2];
  EXPECT_EQ(pipe(out_pipe), 0);
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, out_pipe[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, out_pipe[0]);
  posix_spawn_file_actions_addclose(&actions, out_pipe[1]);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  Proc proc;
  int rc = posix_spawn(&proc.pid, args[0].c_str(), &actions, nullptr,
                       argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  close(out_pipe[1]);
  EXPECT_EQ(rc, 0) << "posix_spawn " << args[0] << ": " << strerror(rc);
  proc.out_fd = out_pipe[0];

  std::string out;
  while (true) {
    size_t pos = out.find("READY port=");
    if (pos != std::string::npos && out.find('\n', pos) != std::string::npos) {
      proc.port = static_cast<uint16_t>(
          std::atoi(out.c_str() + pos + strlen("READY port=")));
      return proc;
    }
    struct pollfd pfd = {proc.out_fd, POLLIN, 0};
    EXPECT_GT(poll(&pfd, 1, 30'000), 0) << "no READY within 30s";
    char buf[256];
    ssize_t n = read(proc.out_fd, buf, sizeof(buf));
    EXPECT_GT(n, 0) << "process exited before READY";
    if (n <= 0) return proc;
    out.append(buf, static_cast<size_t>(n));
  }
}

// A running cluster: one coordinator + N servers, fresh (unseeded) DBs.
struct Cluster {
  Proc coordinator;
  std::vector<Proc> servers;

  static Cluster Start(int num_servers,
                       std::vector<std::string> coord_args = {}) {
    Cluster cluster;
    std::vector<std::string> args = {
        "--hash-servers=" + std::to_string(num_servers), "--no-rebalance"};
    for (std::string& extra : coord_args) args.push_back(std::move(extra));
    cluster.coordinator = SpawnDaemon(CoordinatorBinary(), std::move(args));
    for (int i = 0; i < num_servers; i++) cluster.AddServer();
    return cluster;
  }

  void AddServer() {
    servers.push_back(SpawnDaemon(
        ServerBinary(), {"--coordinator=" + coordinator.address(),
                         "--lanes=2", "--report-interval-ms=50"}));
  }

  std::string StatsOf(net::RpcClient* rpc, const Proc& proc) {
    auto reply = rpc->CallSync(proc.address(), "admin.stats", "", 2'000'000);
    return reply.ok() ? *reply : std::string("<error: ") +
                                     reply.status().ToString() + ">";
  }

  /// Orders a migration through the coordinator and waits for the ack.
  Status Migrate(net::RpcClient* rpc, const std::string& oid,
                 coord::ShardId target_shard) {
    auto reply = rpc->CallSync(coordinator.address(), kSvcMigrate,
                               EncodePlace(oid, target_shard), 10'000'000);
    return reply.ok() ? Status::OK() : reply.status();
  }
};

uint64_t StatsField(const std::string& stats, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = 0;
  while (pos < stats.size()) {
    size_t eol = stats.find('\n', pos);
    if (eol == std::string::npos) eol = stats.size();
    if (stats.compare(pos, needle.size(), needle) == 0) {
      return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos = eol + 1;
  }
  return 0;
}

std::string PostBlob(const std::string& author, uint64_t time_ms,
                     const std::string& message) {
  retwis::Post post;
  post.author = author;
  post.time_ms = time_ms;
  post.message = message;
  return post.Encode();
}

std::multiset<std::string> TimelineMessages(const std::string& payload) {
  auto posts = retwis::DecodeTimeline(payload);
  EXPECT_TRUE(posts.ok()) << posts.status().ToString();
  std::multiset<std::string> messages;
  if (posts.ok()) {
    for (const retwis::Post& post : *posts) messages.insert(post.message);
  }
  return messages;
}

TEST(ClusterdWire, ClusterViewRoundTrip) {
  ClusterView view;
  view.version = 42;
  view.state.hash_shards = 3;
  coord::ShardConfig shard;
  shard.epoch = 1;
  shard.primary = 2;
  view.state.shards[0] = shard;
  view.state.directory["user/7"] = 0;
  view.addresses[1] = "127.0.0.1:4000";
  view.addresses[2] = "127.0.0.1:4001";

  auto decoded = ClusterView::Decode(view.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, 42u);
  EXPECT_EQ(decoded->state.hash_shards, 3u);
  EXPECT_EQ(decoded->addresses.at(2), "127.0.0.1:4001");
  EXPECT_EQ(decoded->state.directory.at("user/7"), 0u);
  // Directory entry wins; non-directory objects hash over hash_shards.
  EXPECT_EQ(decoded->ShardFor("user/7"), 0u);
}

TEST(ClusterdCluster, RoutesAcrossNodesAndRedirects) {
  net::RpcClient rpc;
  Cluster cluster = Cluster::Start(3);

  Client client(&rpc, cluster.coordinator.address());
  // Spread objects over every node; each create+invoke must land on the
  // hash owner (the others would bounce it with kWrongShard).
  const int kObjects = 24;
  for (int i = 0; i < kObjects; i++) {
    std::string oid = "user/" + std::to_string(i);
    auto created = client.Create(oid, "user");
    ASSERT_TRUE(created.ok()) << oid << ": " << created.status().ToString();
    auto invoked = client.Invoke(oid, "store_post", PostBlob("a", 1, "hello"));
    ASSERT_TRUE(invoked.ok()) << oid << ": " << invoked.status().ToString();
  }
  // Every server saw some of the traffic (24 objects over 3 hash shards).
  uint64_t total_invokes = 0;
  for (Proc& server : cluster.servers) {
    uint64_t invokes = StatsField(cluster.StatsOf(&rpc, server), "invokes");
    EXPECT_GT(invokes, 0u);
    total_invokes += invokes;
  }
  EXPECT_GE(total_invokes, static_cast<uint64_t>(2 * kObjects));
}

TEST(ClusterdCluster, EpochGatedReadsAreMonotonic) {
  net::RpcClient rpc;
  Cluster cluster = Cluster::Start(2);

  ClientOptions options;
  options.remote.read_mode = 1;  // strict: reads gated on the apply token
  Client client(&rpc, cluster.coordinator.address(), options);
  const std::string oid = "user/rr";
  ASSERT_TRUE(client.Create(oid, "user").ok());

  for (int i = 0; i < 5; i++) {
    std::string message = "m" + std::to_string(i);
    auto stored = client.Invoke(oid, "store_post", PostBlob("a", 1, message));
    ASSERT_TRUE(stored.ok()) << stored.status().ToString();
    // "lambda.read" lands at the shard's owner, which committed the write
    // before acking it: read-your-writes through the gated path.
    auto timeline =
        client.InvokeRead(oid, "get_timeline", retwis::EncodeU64(10));
    ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
    EXPECT_EQ(TimelineMessages(*timeline).count(message), 1u);
  }
  auto [epoch, seq] = client.read_token();
  EXPECT_EQ(epoch, 0u);  // the real path has no config epochs
  EXPECT_GT(seq, 0u);    // the apply-seq advanced with the commits

  // Later reads never regress the token (monotonic reads across retries).
  auto again = client.InvokeRead(oid, "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_GE(client.read_token().second, seq);
}

TEST(ClusterdCluster, MigrationMovesObjectAndClientFollows) {
  net::RpcClient rpc;
  Cluster cluster = Cluster::Start(2);

  Client client(&rpc, cluster.coordinator.address());
  const std::string oid = "user/42";
  ASSERT_TRUE(client.Create(oid, "user").ok());
  ASSERT_TRUE(client.Invoke(oid, "store_post", PostBlob("a", 1, "one")).ok());

  // A third server joins: directory-only shard, reachable exclusively
  // through migration.
  cluster.AddServer();
  ASSERT_TRUE(cluster.Migrate(&rpc, oid, 2).ok());

  // The stale client bounces at the old owner, refreshes, and lands on
  // the new one; the object's state moved with it.
  auto after = client.Invoke(oid, "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(TimelineMessages(*after).count("one"), 1u);
  auto appended = client.Invoke(oid, "store_post", PostBlob("a", 2, "two"));
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();

  uint64_t in =
      StatsField(cluster.StatsOf(&rpc, cluster.servers[2]), "migrations_in");
  EXPECT_EQ(in, 1u);
  uint64_t served =
      StatsField(cluster.StatsOf(&rpc, cluster.servers[2]), "invokes");
  EXPECT_GE(served, 2u);
}

TEST(ClusterdCluster, MigrationUnderConcurrentWritesLosesNothing) {
  net::RpcClient rpc;
  Cluster cluster = Cluster::Start(2);

  Client setup_client(&rpc, cluster.coordinator.address());
  const std::string oid = "user/7";
  ASSERT_TRUE(setup_client.Create(oid, "user").ok());

  // 4 writer threads append unique posts while the object migrates back
  // and forth between the two shards. Every acked append must survive,
  // exactly once, wherever the object ends up.
  const int kWriters = 4;
  const int kPostsPerWriter = 50;
  std::vector<std::vector<std::string>> acked(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      ClientOptions options;
      options.remote.seed = 1000 + static_cast<uint64_t>(w);
      Client client(&rpc, cluster.coordinator.address(), options);
      for (int i = 0; i < kPostsPerWriter; i++) {
        std::string message =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        auto result = client.Invoke(
            oid, "store_post",
            PostBlob("w" + std::to_string(w),
                     static_cast<uint64_t>(w * 1000 + i), message));
        if (result.ok()) acked[w].push_back(message);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread migrator([&] {
    coord::ShardId target = 1;
    while (!stop.load(std::memory_order_acquire)) {
      (void)cluster.Migrate(&rpc, oid, target);
      target = target == 1 ? 0 : 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  migrator.join();

  auto timeline = setup_client.Invoke(oid, "get_timeline",
                                      retwis::EncodeU64(100'000));
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  std::multiset<std::string> messages = TimelineMessages(*timeline);
  size_t total_acked = 0;
  for (int w = 0; w < kWriters; w++) {
    total_acked += acked[w].size();
    for (const std::string& message : acked[w]) {
      EXPECT_EQ(messages.count(message), 1u)
          << "acked post lost or duplicated: " << message;
    }
  }
  // The writers must have made real progress for the test to mean much.
  EXPECT_GT(total_acked, static_cast<size_t>(kWriters * kPostsPerWriter / 2));
}

TEST(ClusterdFaults, KillTargetDuringMigrationRollsBack) {
  net::RpcClient rpc;
  Cluster cluster = Cluster::Start(2);

  Client client(&rpc, cluster.coordinator.address());
  // An object that hash-places on servers[0], so the kill below hits the
  // migration *target*, not the object's home.
  std::string oid;
  for (int i = 0;; i++) {
    oid = "user/" + std::to_string(i);
    if (Fnv1a64(oid) % 2 == 0) break;
  }
  ASSERT_TRUE(client.Create(oid, "user").ok());
  ASSERT_TRUE(client.Invoke(oid, "store_post", PostBlob("a", 1, "keep")).ok());

  // Kill the migration target, then order the move: install cannot
  // succeed, the source rolls back and keeps serving the object.
  cluster.servers[1].Kill();
  Status migrated = cluster.Migrate(&rpc, oid, 1);
  EXPECT_FALSE(migrated.ok());

  auto after = client.Invoke(oid, "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(TimelineMessages(*after).count("keep"), 1u);
  auto appended = client.Invoke(oid, "store_post", PostBlob("a", 2, "more"));
  EXPECT_TRUE(appended.ok()) << appended.status().ToString();

  uint64_t failures = StatsField(cluster.StatsOf(&rpc, cluster.servers[0]),
                                 "migration_failures");
  EXPECT_GE(failures, 1u);
}

TEST(ClusterdServer, SigtermDrainsAndExitsCleanly) {
  char db_template[] = "/tmp/clusterd_drain_XXXXXX";
  ASSERT_NE(mkdtemp(db_template), nullptr);
  std::string db_path = std::string(db_template) + "/db";

  Proc server = SpawnDaemon(ServerBinary(), {"--db=" + db_path, "--lanes=2"});
  {
    net::RpcClient rpc;
    net::RemoteClient client(&rpc, {server.address()});
    ASSERT_TRUE(client.Create("user/1", "user").ok());
    ASSERT_TRUE(
        client.Invoke("user/1", "store_post", PostBlob("a", 1, "durable")).ok());
  }
  ASSERT_EQ(kill(server.pid, SIGTERM), 0);
  int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status)) << "status=" << status;
  EXPECT_EQ(WEXITSTATUS(status), 0) << "graceful drain must exit 0";

  // A restart from the same path sees every acked commit.
  Proc restarted = SpawnDaemon(ServerBinary(), {"--db=" + db_path, "--lanes=2"});
  net::RpcClient rpc;
  net::RemoteClient client(&rpc, {restarted.address()});
  auto timeline = client.Invoke("user/1", "get_timeline", retwis::EncodeU64(10));
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  EXPECT_EQ(TimelineMessages(*timeline).count("durable"), 1u);
}

}  // namespace
}  // namespace lo::clusterd
