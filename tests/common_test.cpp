// Unit and property tests for src/common: status, coding, crc32c, hashes,
// rng/zipf, histogram.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/sha256.h"
#include "common/status.h"

namespace lo {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("key xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key xyz");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotPrimary); c++) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  LO_ASSIGN_OR_RETURN(int h, Half(v));
  LO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(Coding, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  ASSERT_EQ(buf.size(), 14u);
  Reader r{buf};
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(r.GetFixed16(&a));
  ASSERT_TRUE(r.GetFixed32(&b));
  ASSERT_TRUE(r.GetFixed64(&c));
  EXPECT_EQ(a, 0xbeef);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_TRUE(r.empty());
}

TEST(Coding, VarintBoundaries) {
  // Values around every 7-bit boundary must round-trip.
  std::vector<uint64_t> values;
  for (int shift = 0; shift <= 63; shift += 7) {
    uint64_t v = 1ull << shift;
    values.push_back(v - 1);
    values.push_back(v);
    values.push_back(v + 1);
  }
  values.push_back(UINT64_MAX);
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Reader r{buf};
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.empty());
}

TEST(Coding, Varint32RejectsTruncated) {
  std::string buf;
  PutVarint32(&buf, 300);
  Reader r{std::string_view(buf).substr(0, 1)};
  uint32_t v;
  EXPECT_FALSE(r.GetVarint32(&v));
}

TEST(Coding, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Reader r{buf};
  std::string_view a, b, c;
  ASSERT_TRUE(r.GetLengthPrefixed(&a));
  ASSERT_TRUE(r.GetLengthPrefixed(&b));
  ASSERT_TRUE(r.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(Coding, LengthPrefixedTruncatedDoesNotAdvance) {
  std::string buf;
  PutVarint32(&buf, 100);  // claims 100 bytes, provides 3
  buf += "abc";
  Reader r{buf};
  std::string_view v;
  EXPECT_FALSE(r.GetLengthPrefixed(&v));
  // Cursor must be unchanged so callers can report offsets.
  EXPECT_EQ(r.remaining(), buf.size());
}

TEST(Coding, PropertyRandomRoundTrip) {
  Rng rng(7);
  for (int iter = 0; iter < 200; iter++) {
    std::string buf;
    std::vector<uint64_t> vals;
    int n = static_cast<int>(rng.Uniform(20)) + 1;
    for (int i = 0; i < n; i++) {
      uint64_t v = rng.Next() >> rng.Uniform(64);
      vals.push_back(v);
      PutVarint64(&buf, v);
    }
    Reader r{buf};
    for (uint64_t v : vals) {
      uint64_t got;
      ASSERT_TRUE(r.GetVarint64(&got));
      ASSERT_EQ(got, v);
    }
    ASSERT_TRUE(r.empty());
  }
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones), 0x62a8ab43u);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  std::string data = "hello world, this is a wal record";
  uint32_t whole = crc32c::Value(data);
  uint32_t split = crc32c::Extend(crc32c::Extend(0, data.data(), 10),
                                  data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32c, MaskRoundTripAndDiffers) {
  uint32_t crc = crc32c::Value("abc");
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(Crc32c, DetectsBitFlip) {
  std::string data(128, 'a');
  uint32_t before = crc32c::Value(data);
  data[77] ^= 0x01;
  EXPECT_NE(crc32c::Value(data), before);
}

TEST(Hash, Fnv1a64KnownValues) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string data;
  Rng rng(3);
  for (int len : {0, 1, 55, 56, 63, 64, 65, 127, 128, 1000}) {
    data = rng.Bytes(static_cast<size_t>(len));
    Sha256Hasher h;
    // Feed in ragged chunks.
    size_t pos = 0;
    while (pos < data.size()) {
      size_t chunk = std::min<size_t>(rng.Uniform(17) + 1, data.size() - pos);
      h.Update(std::string_view(data).substr(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(h.Finish(), Sha256(data)) << "len=" << len;
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) counts[rng.Uniform(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(5);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, MostPopularDominates) {
  Rng rng(11);
  ZipfGenerator zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; i++) counts[zipf.Sample(rng)]++;
  // Rank 0 must be sampled far more than rank 500.
  EXPECT_GT(counts[0], counts[500] * 20);
  // And the tail must still be reachable.
  int tail = 0;
  for (size_t i = 900; i < 1000; i++) tail += counts[i];
  EXPECT_GT(tail, 0);
}

TEST(Zipf, AlphaZeroIsUniform) {
  Rng rng(12);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; i++) counts[zipf.Sample(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 4000);
    EXPECT_LT(c, 6000);
  }
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (int i = 0; i < 16; i++) h.Record(i);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 15);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_NEAR(h.Mean(), 7.5, 1e-9);
}

TEST(Histogram, PercentilesWithinRelativeError) {
  Histogram h;
  Rng rng(4);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; i++) {
    auto v = static_cast<int64_t>(rng.Uniform(1000000));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    auto exact = values[static_cast<size_t>(q * (values.size() - 1))];
    auto approx = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.10 * static_cast<double>(exact) + 16)
        << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsCombined) {
  Histogram a, b, both;
  Rng rng(8);
  for (int i = 0; i < 5000; i++) {
    auto v = static_cast<int64_t>(rng.Uniform(100000));
    if (i % 2 == 0) a.Record(v); else b.Record(v);
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.Min(), both.Min());
  EXPECT_EQ(a.Max(), both.Max());
  EXPECT_EQ(a.Percentile(0.99), both.Percentile(0.99));
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, EmptyPercentileBoundaries) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.99), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.StdDev(), 0.0);
}

TEST(Histogram, SingleSampleEveryQuantileIsThatSample) {
  Histogram h;
  h.Record(500);
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    auto v = h.Percentile(q);
    // Log-bucketed: ~1% relative error allowed, but every quantile of a
    // one-sample distribution must land in the sample's bucket.
    EXPECT_NEAR(static_cast<double>(v), 500.0, 0.02 * 500.0) << "q=" << q;
  }
  EXPECT_NEAR(h.Mean(), 500.0, 1e-9);
}

TEST(Histogram, P99WithFewerThan100Samples) {
  // With n < 100 samples, p99 must not extrapolate past the data: it
  // stays within [p50, max] and near the top samples (one bucket of
  // slack, ~12% at this magnitude).
  Histogram h;
  for (int i = 1; i <= 10; i++) h.Record(i * 10);  // 10..100
  auto p99 = h.Percentile(0.99);
  EXPECT_GE(p99, h.Percentile(0.5));
  EXPECT_LE(p99, h.Max());
  EXPECT_NEAR(static_cast<double>(p99), 90.0, 0.12 * 90.0);
  EXPECT_EQ(h.Percentile(1.0), 100);  // q=1 is the exact max
}

}  // namespace
}  // namespace lo
