// Model-checked random-operation tests for the real-threaded sharded
// executor (runtime/executor.h) over WAL group commit
// (storage/group_commit.h).
//
// A seeded generator drives N OS threads of mixed invocations — λasm
// VM-metered increments, native read-modify-write adds, read-only reads —
// against a ParallelNode. Every committed read-modify-write returns the
// post-state it produced, so the observed per-object history can be
// replayed offline against a single-threaded in-memory model: order the
// ops by their returned post-state and re-apply them sequentially; any
// divergence (a lost update, a torn batch, a reordered same-object pair)
// breaks the replay and fails with the seed printed for deterministic
// re-generation of the op stream.
//
// The FaultyEnv variant crashes the storage stack mid-run and proves
// group commit never acknowledges a lost write: everything acked before
// the crash must still be in the store after power-loss + recovery, even
// though acked commits shared fsyncs with other lanes' commits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/executor.h"
#include "storage/env.h"
#include "storage/faulty_env.h"
#include "vm/assembler.h"

namespace lo::runtime {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kOpsPerThread = 1250;  // x 8 threads = 10k ops per seed
constexpr size_t kObjects = 16;
constexpr uint64_t kSeeds[] = {101, 202, 303, 404, 505};

// The λasm VM counter from the runtime tests: read 8-byte field "n",
// increment, write back, return the new value. Runs fuel-metered inside
// its own vm::Instance per invocation.
std::shared_ptr<vm::Module> VmIncrModule() {
  auto module = vm::Assemble(R"(
data key 0 "n"
func incr export locals rc v
  push @key
  push #key
  push 64
  push 8
  kv.get
  local.set rc
  local.get rc
  push 0xffffffffffffffff
  eq
  br_if fresh
  push 64
  load64
  local.set v
fresh:
  local.get v
  push 1
  add
  local.set v
  push 64
  local.get v
  store64
  push @key
  push #key
  push 64
  push 8
  kv.put
  push 64
  push 8
  ret
end
)");
  LO_CHECK_MSG(module.ok(), "λasm counter failed to assemble");
  return std::make_shared<vm::Module>(std::move(*module));
}

// "mixed": VM incr on field "n", native add on field "value", read-only
// readers for both. VM and native methods interleave on the same object.
void RegisterMixedType(TypeRegistry* types) {
  ObjectType type;
  type.name = "mixed";
  type.methods["incr"] =
      MethodImpl{.kind = MethodKind::kReadWrite, .module = VmIncrModule()};
  type.methods["add"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx,
                   std::string arg) -> sim::Task<Result<std::string>> {
        uint64_t delta = arg.empty() ? 1 : std::stoull(arg);
        auto current = co_await ctx.Get("value");
        uint64_t value = current.ok() ? std::stoull(*current) : 0;
        value += delta;
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", std::to_string(value)));
        co_return std::to_string(value);
      }};
  type.methods["read"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](InvocationContext& ctx,
                   std::string) -> sim::Task<Result<std::string>> {
        auto value = co_await ctx.Get("value");
        co_return value.ok() ? *value : std::string("0");
      }};
  type.methods["read_n"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](InvocationContext& ctx,
                   std::string) -> sim::Task<Result<std::string>> {
        auto n = co_await ctx.Get("n");
        uint64_t v = 0;
        if (n.ok() && n->size() == 8) std::memcpy(&v, n->data(), 8);
        co_return std::to_string(v);
      }};
  LO_CHECK(types->Register(std::move(type)).ok());
}

std::string Oid(size_t i) { return "obj/" + std::to_string(i); }

uint64_t DecodeLe64(const std::string& bytes) {
  uint64_t v = 0;
  if (bytes.size() == 8) std::memcpy(&v, bytes.data(), 8);
  return v;
}

// One completed read-modify-write: which object, which mechanism, and the
// post-state the executor reported for it.
struct OpRecord {
  size_t obj;
  bool vm;         // true = λasm incr (delta 1 on "n"), false = native add
  uint64_t delta;  // native add's increment
  uint64_t result; // returned post-state
};

struct ThreadLog {
  std::vector<OpRecord> ops;       // in this thread's submission order
  std::vector<std::string> errors; // gtest is not thread-safe; collect
};

TEST(ConcurrencyModel, RandomOpsMatchSequentialModel) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("replay with seed=" + std::to_string(seed));
    storage::MemEnv env;
    storage::Options db_options;
    db_options.env = &env;
    db_options.serialize_access = true;  // lanes + committer share the DB
    auto db = std::move(*storage::DB::Open(db_options, "/db"));
    TypeRegistry types;
    RegisterMixedType(&types);

    ParallelNodeOptions node_options;
    node_options.lanes = kThreads;
    node_options.group_commit.max_batch_delay_us = 100;
    ParallelNode node(db.get(), &types, node_options);
    for (size_t i = 0; i < kObjects; i++) {
      ASSERT_TRUE(node.CreateObject(Oid(i), "mixed").get().ok());
    }

    std::vector<ThreadLog> logs(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; t++) {
      threads.emplace_back([&node, &log = logs[t], seed, t] {
        Rng rng(seed * 7919 + t);
        for (size_t i = 0; i < kOpsPerThread; i++) {
          size_t obj = rng.Uniform(kObjects);
          uint64_t dice = rng.Uniform(100);
          if (dice < 40) {
            auto r = node.Invoke(Oid(obj), "incr", "").get();
            if (!r.ok()) {
              log.errors.push_back("incr: " + r.status().ToString());
              continue;
            }
            log.ops.push_back({obj, true, 1, DecodeLe64(*r)});
          } else if (dice < 80) {
            uint64_t delta = 1 + rng.Uniform(4);
            auto r = node.Invoke(Oid(obj), "add", std::to_string(delta)).get();
            if (!r.ok()) {
              log.errors.push_back("add: " + r.status().ToString());
              continue;
            }
            log.ops.push_back({obj, false, delta, std::stoull(*r)});
          } else {
            auto r = node.Invoke(Oid(obj), "read", "").get();
            if (!r.ok()) log.errors.push_back("read: " + r.status().ToString());
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    node.Drain();
    for (size_t t = 0; t < kThreads; t++) {
      for (const auto& error : logs[t].errors) {
        ADD_FAILURE() << "thread " << t << ": " << error;
      }
    }

    // Same-object FIFO from one submitter: a thread's later op on an
    // object must observe a later post-state (lane queues are FIFO, so
    // program order within a thread is execution order per object).
    for (size_t t = 0; t < kThreads; t++) {
      std::map<std::pair<size_t, bool>, uint64_t> last;
      for (const OpRecord& op : logs[t].ops) {
        auto key = std::make_pair(op.obj, op.vm);
        auto it = last.find(key);
        if (it != last.end()) {
          EXPECT_GT(op.result, it->second)
              << "thread " << t << " saw object " << Oid(op.obj)
              << " go backwards (same-object reordering)";
        }
        last[key] = op.result;
      }
    }

    // Replay against the single-threaded model: per object, order the
    // observed ops by returned post-state and re-apply sequentially. A
    // lost or duplicated update cannot produce a replayable history.
    for (size_t obj = 0; obj < kObjects; obj++) {
      std::vector<OpRecord> vm_ops, native_ops;
      for (const auto& log : logs) {
        for (const OpRecord& op : log.ops) {
          if (op.obj != obj) continue;
          (op.vm ? vm_ops : native_ops).push_back(op);
        }
      }
      auto by_result = [](const OpRecord& a, const OpRecord& b) {
        return a.result < b.result;
      };
      std::sort(vm_ops.begin(), vm_ops.end(), by_result);
      std::sort(native_ops.begin(), native_ops.end(), by_result);
      uint64_t model_n = 0;
      for (const OpRecord& op : vm_ops) {
        model_n += 1;
        ASSERT_EQ(op.result, model_n)
            << "VM history of " << Oid(obj) << " does not replay";
      }
      uint64_t model_value = 0;
      for (const OpRecord& op : native_ops) {
        model_value += op.delta;
        ASSERT_EQ(op.result, model_value)
            << "native history of " << Oid(obj) << " does not replay";
      }
      // The drained store agrees with the model's final state.
      auto n = node.Invoke(Oid(obj), "read_n", "").get();
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(std::stoull(*n), model_n) << Oid(obj);
      auto value = node.Invoke(Oid(obj), "read", "").get();
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(std::stoull(*value), model_value) << Oid(obj);
    }

    // Sanity on the machinery itself: work actually spread across lanes,
    // commits actually shared fsyncs, and the VM actually metered fuel.
    size_t active_lanes = 0;
    uint64_t fuel = 0;
    for (size_t lane = 0; lane < node.lanes(); lane++) {
      active_lanes += node.lane_executed(lane) > 0 ? 1 : 0;
      fuel += node.lane_runtime(lane).metrics().fuel_executed;
    }
    EXPECT_GT(active_lanes, 1u) << "everything serialized onto one lane";
    EXPECT_GT(fuel, 0u) << "VM invocations never ran fuel-metered";
    const auto& gc = node.committer().stats();
    EXPECT_GT(gc.commits, 0u);
    EXPECT_LE(gc.groups, gc.commits);
  }
}

TEST(ConcurrencyModel, GroupCommitNeverAcksALostWrite) {
  // Crash the env at several points mid-run. Every invocation whose
  // future resolved OK before the crash rode some group's successful
  // fsync; after power loss (unsynced bytes dropped) and recovery, its
  // effect must still be there.
  for (uint64_t seed : {11ull, 23ull, 37ull}) {
    for (uint64_t crash_after : {25ull, 100ull, 400ull}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " crash_after=" + std::to_string(crash_after));
      storage::MemEnv base;
      storage::FaultyEnv faulty(&base, seed);
      storage::Options db_options;
      db_options.env = &faulty;
      db_options.serialize_access = true;
      auto db = std::move(*storage::DB::Open(db_options, "/db"));
      TypeRegistry types;
      RegisterMixedType(&types);

      constexpr size_t kCrashObjects = 8;
      std::vector<uint64_t> max_acked(kCrashObjects, 0);
      {
        ParallelNodeOptions node_options;
        node_options.lanes = kThreads;
        node_options.group_commit.max_batch_delay_us = 50;
        ParallelNode node(db.get(), &types, node_options);
        for (size_t i = 0; i < kCrashObjects; i++) {
          ASSERT_TRUE(node.CreateObject(Oid(i), "mixed").get().ok());
        }
        // Arm after the creates so object setup is always durable.
        faulty.CrashAfterWriteOps(crash_after);

        std::vector<std::vector<uint64_t>> acked(kThreads);
        std::vector<std::thread> threads;
        for (size_t t = 0; t < kThreads; t++) {
          threads.emplace_back([&node, &acked, t, seed] {
            Rng rng(seed * 131 + t);
            std::vector<uint64_t> local(kCrashObjects, 0);
            for (size_t i = 0; i < 200; i++) {
              size_t obj = rng.Uniform(kCrashObjects);
              auto r = node.Invoke(Oid(obj), "add", "1").get();
              if (!r.ok()) continue;  // post-crash failures are expected
              local[obj] = std::max<uint64_t>(local[obj], std::stoull(*r));
            }
            acked[t] = std::move(local);
          });
        }
        for (auto& thread : threads) thread.join();
        node.Drain();
        for (size_t obj = 0; obj < kCrashObjects; obj++) {
          for (size_t t = 0; t < kThreads; t++) {
            max_acked[obj] = std::max(max_acked[obj], acked[t][obj]);
          }
        }
        ASSERT_TRUE(faulty.crashed()) << "crash point never fired";
      }

      // Power loss, reboot, recover.
      db.reset();
      base.DropUnsyncedData();
      faulty.Revive();
      auto reopened = storage::DB::Open(db_options, "/db");
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      db = std::move(*reopened);
      for (size_t obj = 0; obj < kCrashObjects; obj++) {
        auto durable = db->Get({}, FieldKey(Oid(obj), "value"));
        uint64_t durable_value =
            durable.ok() ? std::stoull(*durable) : 0;
        EXPECT_GE(durable_value, max_acked[obj])
            << Oid(obj) << ": an acked write was lost";
      }
    }
  }
}

// "fanout": a read-write method that nested-invokes "add" on every
// target named in its comma-separated argument — the ReTwis post
// fan-out shape, with targets pinned to arbitrary lanes.
void RegisterFanoutType(TypeRegistry* types) {
  ObjectType type;
  type.name = "fanout";
  type.methods["spray"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx,
                   std::string arg) -> sim::Task<Result<std::string>> {
        uint64_t acked = 0;
        size_t start = 0;
        while (start < arg.size()) {
          size_t comma = arg.find(',', start);
          if (comma == std::string::npos) comma = arg.size();
          std::string target = arg.substr(start, comma - start);
          start = comma + 1;
          if (target.empty()) continue;
          auto added = co_await ctx.InvokeObject(target, "add", "1");
          if (!added.ok()) co_return added.status();
          acked++;
        }
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("sprays", std::to_string(acked)));
        co_return std::to_string(acked);
      }};
  LO_CHECK(types->Register(std::move(type)).ok());
}

// Cross-lane nested invocation: sprayers on every lane fan out to
// targets on every lane, so workers constantly block on each other's
// lanes; the help-while-waiting handoff must keep them all progressing
// (no lane-to-lane deadlock) and every nested increment must land
// exactly once.
TEST(ConcurrencyModel, CrossLaneNestedFanoutLosesNothing) {
  storage::MemEnv env;
  storage::Options db_options;
  db_options.env = &env;
  db_options.serialize_access = true;
  auto db = std::move(*storage::DB::Open(db_options, "/db"));
  TypeRegistry types;
  RegisterMixedType(&types);
  RegisterFanoutType(&types);

  ParallelNodeOptions node_options;
  node_options.lanes = 4;
  node_options.group_commit.max_batch_delay_us = 100;
  ParallelNode node(db.get(), &types, node_options);

  constexpr size_t kTargets = 12;
  constexpr size_t kSprayers = 8;
  constexpr size_t kRounds = 15;
  std::string all_targets;
  for (size_t i = 0; i < kTargets; i++) {
    ASSERT_TRUE(node.CreateObject(Oid(i), "mixed").get().ok());
    if (!all_targets.empty()) all_targets += ',';
    all_targets += Oid(i);
  }
  for (size_t s = 0; s < kSprayers; s++) {
    ASSERT_TRUE(
        node.CreateObject("fan/" + std::to_string(s), "fanout").get().ok());
  }

  std::vector<std::string> errors(kSprayers);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSprayers; s++) {
    threads.emplace_back([&node, &all_targets, &error = errors[s], s] {
      for (size_t round = 0; round < kRounds; round++) {
        auto result =
            node.Invoke("fan/" + std::to_string(s), "spray", all_targets).get();
        if (!result.ok()) {
          error = result.status().ToString();
          return;
        }
        if (*result != std::to_string(kTargets)) {
          error = "short fan-out: " + *result;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  node.Drain();
  for (const std::string& error : errors) EXPECT_EQ(error, "");

  for (size_t i = 0; i < kTargets; i++) {
    auto value = node.Invoke(Oid(i), "read", "").get();
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, std::to_string(kSprayers * kRounds)) << Oid(i);
  }
}

}  // namespace
}  // namespace lo::runtime
