// Cross-architecture consistency tests:
//  - the aggregated system upholds invocation linearizability end-to-end
//    (no lost updates through the full cluster stack);
//  - the disaggregated baseline, by design, does NOT (paper §5: "the
//    disaggregated variant provides no consistency guarantees") — we
//    demonstrate the anomaly it permits;
//  - whole-cluster determinism: identical seeds replay identical runs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/deployment.h"
#include "cluster/deployment.h"
#include "common/coding.h"
#include "retwis/retwis.h"
#include "runtime/executor.h"
#include "storage/env.h"

namespace lo {
namespace {

using sim::Detach;
using sim::Task;

// Runs `concurrent` follow("user/x") invocations against one account and
// returns the final follower count the storage layer holds.
uint64_t AggregatedFollowCount(int concurrent) {
  sim::Simulator sim(5);
  runtime::TypeRegistry types;
  EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();

  cluster::Client& setup = deployment.NewClient();
  bool ready = false;
  Detach([](cluster::Client* client, bool* ready) -> Task<void> {
    (void)co_await client->Create("user/target", "user");
    *ready = true;
  }(&setup, &ready));
  while (!ready) EXPECT_TRUE(sim.Step());

  int done = 0;
  for (int i = 0; i < concurrent; i++) {
    cluster::Client& client = deployment.NewClient();
    Detach([](cluster::Client* client, int i, int* done) -> Task<void> {
      auto r = co_await client->Invoke("user/target", "follow",
                                       "user/f" + std::to_string(i));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      (*done)++;
    }(&client, i, &done));
  }
  while (done < concurrent) EXPECT_TRUE(sim.Step());

  auto raw = deployment.node(0).db().Get(
      {}, runtime::FieldKey("user/target", retwis::kFollowerCountKey));
  EXPECT_TRUE(raw.ok());
  return DecodeFixed64(raw->data());
}

uint64_t BaselineFollowCount(int concurrent, uint64_t seed) {
  sim::Simulator sim(seed);
  runtime::TypeRegistry types;
  EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  baseline::DisaggregatedDeployment deployment(sim, &types);

  auto& setup = deployment.NewClientEndpoint();
  {
    std::string payload;
    PutLengthPrefixed(&payload, "user/target");
    PutLengthPrefixed(&payload, "user");
    bool ready = false;
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              bool* ready) -> Task<void> {
      auto r = co_await rpc->Call(compute, "fn.create", std::move(payload),
                                  sim::Seconds(1));
      EXPECT_TRUE(r.ok());
      *ready = true;
    }(&setup, deployment.compute(0).id(), std::move(payload), &ready));
    while (!ready) EXPECT_TRUE(sim.Step());
  }

  int done = 0;
  for (int i = 0; i < concurrent; i++) {
    auto& client = deployment.NewClientEndpoint();
    std::string payload;
    PutLengthPrefixed(&payload, "user/target");
    PutLengthPrefixed(&payload, "follow");
    PutLengthPrefixed(&payload, "user/f" + std::to_string(i));
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              int* done) -> Task<void> {
      auto r = co_await rpc->Call(compute, "fn.invoke", std::move(payload),
                                  sim::Seconds(2));
      EXPECT_TRUE(r.ok());
      (*done)++;
    }(&client, deployment.compute(0).id(), std::move(payload), &done));
  }
  while (done < concurrent) EXPECT_TRUE(sim.Step());

  auto raw = deployment.storage(0).db().Get(
      {}, runtime::FieldKey("user/target", retwis::kFollowerCountKey));
  EXPECT_TRUE(raw.ok());
  return DecodeFixed64(raw->data());
}

TEST(ConsistencyComparison, AggregatedNeverLosesUpdates) {
  // Invocation linearizability: every one of 40 concurrent follows lands.
  EXPECT_EQ(AggregatedFollowCount(40), 40u);
}

TEST(ConsistencyComparison, BaselinePermitsLostUpdates) {
  // The baseline's follow() is read-modify-write over the network with
  // no isolation: concurrent invocations read the same counter and
  // overwrite each other. With 40 racing follows, some seeds lose
  // updates — which is exactly the anomaly class the paper motivates
  // LambdaObjects with. (Deterministic per seed; we scan a few.)
  bool lost_somewhere = false;
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    uint64_t count = BaselineFollowCount(40, seed);
    EXPECT_LE(count, 40u);
    if (count < 40) lost_somewhere = true;
  }
  EXPECT_TRUE(lost_somewhere)
      << "expected at least one seed to exhibit the lost-update anomaly";
}

TEST(Determinism, IdenticalSeedsReplayIdenticalClusterRuns) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim(seed);
    runtime::TypeRegistry types;
    EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
    cluster::AggregatedDeployment deployment(sim, &types);
    deployment.WaitUntilReady();
    cluster::Client& client = deployment.NewClient();
    int done = 0;
    for (int i = 0; i < 10; i++) {
      Detach([](cluster::Client* client, int i, int* done) -> Task<void> {
        std::string oid = "user/u" + std::to_string(i % 3);
        if (i < 3) (void)co_await client->Create(oid, "user");
        (void)co_await client->Invoke(oid, "create_post", "p" + std::to_string(i));
        (*done)++;
      }(&client, i, &done));
    }
    while (done < 10) EXPECT_TRUE(sim.Step());
    // Fingerprint: final virtual time + executed events + node metrics.
    auto metrics = deployment.node(0).runtime().metrics();
    return std::tuple(sim.Now(), sim.executed_events(), metrics.invocations,
                      metrics.commits);
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(std::get<0>(run(1234)), std::get<0>(run(999)));
}

// Registers a "counter" type whose add() is a read-modify-write over the
// "value" field — the returned post-state doubles as a read-your-writes
// probe (a stale read would repeat or skip a count).
void RegisterCounterType(runtime::TypeRegistry* types) {
  runtime::ObjectType type;
  type.name = "counter";
  type.methods["add"] = runtime::MethodImpl{
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx,
                   std::string) -> Task<Result<std::string>> {
        auto current = co_await ctx.Get("value");
        uint64_t value = current.ok() ? std::stoull(*current) : 0;
        value += 1;
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", std::to_string(value)));
        co_return std::to_string(value);
      }};
  ASSERT_TRUE(types->Register(std::move(type)).ok());
}

// Lane-affinity invariant of the real-threaded sharded executor: two
// invocations on the SAME object submitted from DIFFERENT client threads
// are never reordered — both hash to one lane, whose queue is FIFO in
// submission order. The two threads hand the submission baton back and
// forth, so thread B's op is always enqueued strictly after thread A's;
// the counter's returned post-states must reflect that order, no matter
// how much unrelated traffic churns the other lanes.
TEST(LaneAffinity, SameObjectCrossThreadSubmissionsExecuteInOrder) {
  storage::MemEnv env;
  storage::Options db_options;
  db_options.env = &env;
  db_options.serialize_access = true;
  auto db = std::move(*storage::DB::Open(db_options, "/db"));
  runtime::TypeRegistry types;
  RegisterCounterType(&types);

  runtime::ParallelNodeOptions node_options;
  node_options.lanes = 8;
  node_options.group_commit.max_batch_delay_us = 50;
  runtime::ParallelNode node(db.get(), &types, node_options);
  ASSERT_TRUE(node.CreateObject("shared", "counter").get().ok());
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        node.CreateObject("noise/" + std::to_string(i), "counter").get().ok());
  }

  constexpr int kRounds = 300;
  // Baton protocol: A submits (baton -> 1), B submits (baton -> 2), A
  // collects both results and starts the next round (baton -> 0).
  std::atomic<int> baton{0};
  std::atomic<bool> stop_noise{false};
  std::vector<std::pair<uint64_t, uint64_t>> observed(kRounds);

  std::thread noise([&node, &stop_noise] {
    int i = 0;
    while (!stop_noise.load(std::memory_order_relaxed)) {
      (void)node.Invoke("noise/" + std::to_string(i % 4), "add", "").get();
      i++;
    }
  });
  std::thread b([&node, &baton, &observed] {
    for (int round = 0; round < kRounds; round++) {
      while (baton.load(std::memory_order_acquire) != 1) std::this_thread::yield();
      auto future = node.Invoke("shared", "add", "");
      baton.store(2, std::memory_order_release);
      uint64_t result = std::stoull(*future.get());
      // Only B's own result is written here; A pairs them up per round.
      observed[round].second = result;
    }
  });
  std::thread a([&node, &baton, &observed] {
    for (int round = 0; round < kRounds; round++) {
      auto future = node.Invoke("shared", "add", "");
      baton.store(1, std::memory_order_release);
      uint64_t result = std::stoull(*future.get());
      observed[round].first = result;
      while (baton.load(std::memory_order_acquire) != 2) std::this_thread::yield();
      baton.store(0, std::memory_order_release);
    }
  });
  a.join();
  b.join();
  stop_noise.store(true, std::memory_order_relaxed);
  noise.join();
  node.Drain();

  for (int round = 0; round < kRounds; round++) {
    EXPECT_LT(observed[round].first, observed[round].second)
        << "round " << round
        << ": thread B's later submission executed before thread A's";
  }
  // Nothing lost either: 2 ops per round on a fresh counter.
  auto final_value = db->Get({}, runtime::FieldKey("shared", "value"));
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(std::stoull(*final_value), static_cast<uint64_t>(2 * kRounds));
}

// Read-your-writes across memtable shard boundaries, through the full
// runtime stack: with the DB's memtable split 8 ways, every counter
// add() must observe the previous add()'s Set no matter which shard the
// field key hashed to. Each returned post-state equals the op's ordinal,
// so a single stale cross-shard read would skip or repeat a count. Four
// client threads drive disjoint objects (whose keys scatter over the
// shards), then a flush + compaction moves everything to SSTables and
// one more add() per object proves the post-flush read path agrees.
TEST(ShardedStorage, ReadYourWritesAcrossShardsUnderParallelNode) {
  storage::MemEnv env;
  storage::Options db_options;
  db_options.env = &env;
  db_options.serialize_access = true;
  db_options.memtable_shards = 8;
  auto db = std::move(*storage::DB::Open(db_options, "/db"));
  runtime::TypeRegistry types;
  RegisterCounterType(&types);

  runtime::ParallelNodeOptions node_options;
  node_options.lanes = 8;
  node_options.group_commit.max_batch_delay_us = 50;
  runtime::ParallelNode node(db.get(), &types, node_options);

  constexpr int kThreads = 4;
  constexpr int kObjectsPerThread = 4;
  constexpr int kAddsPerObject = 50;
  for (int t = 0; t < kThreads; t++) {
    for (int o = 0; o < kObjectsPerThread; o++) {
      std::string oid = "obj/" + std::to_string(t) + "/" + std::to_string(o);
      ASSERT_TRUE(node.CreateObject(oid, "counter").get().ok());
    }
  }

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; t++) {
    clients.emplace_back([&node, t] {
      for (int o = 0; o < kObjectsPerThread; o++) {
        std::string oid = "obj/" + std::to_string(t) + "/" + std::to_string(o);
        for (int i = 1; i <= kAddsPerObject; i++) {
          auto result = node.Invoke(oid, "add", "").get();
          EXPECT_TRUE(result.ok()) << result.status().ToString();
          if (result.ok()) {
            // The post-state IS the read-your-writes check.
            EXPECT_EQ(std::stoull(*result), static_cast<uint64_t>(i)) << oid;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  node.Drain();

  storage::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.memtable_shards, 8u);

  // Push every shard through flush + compaction, then make sure the
  // SSTable read path tells the same story.
  ASSERT_TRUE(db->CompactAll().ok());
  for (int t = 0; t < kThreads; t++) {
    for (int o = 0; o < kObjectsPerThread; o++) {
      std::string oid = "obj/" + std::to_string(t) + "/" + std::to_string(o);
      auto value = db->Get({}, runtime::FieldKey(oid, "value"));
      ASSERT_TRUE(value.ok()) << oid;
      EXPECT_EQ(std::stoull(*value), static_cast<uint64_t>(kAddsPerObject));
      auto bumped = node.Invoke(oid, "add", "").get();
      ASSERT_TRUE(bumped.ok());
      EXPECT_EQ(std::stoull(*bumped),
                static_cast<uint64_t>(kAddsPerObject) + 1);
    }
  }
  node.Drain();
}

}  // namespace
}  // namespace lo
