// Cross-architecture consistency tests:
//  - the aggregated system upholds invocation linearizability end-to-end
//    (no lost updates through the full cluster stack);
//  - the disaggregated baseline, by design, does NOT (paper §5: "the
//    disaggregated variant provides no consistency guarantees") — we
//    demonstrate the anomaly it permits;
//  - whole-cluster determinism: identical seeds replay identical runs.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/deployment.h"
#include "cluster/deployment.h"
#include "common/coding.h"
#include "retwis/retwis.h"

namespace lo {
namespace {

using sim::Detach;
using sim::Task;

// Runs `concurrent` follow("user/x") invocations against one account and
// returns the final follower count the storage layer holds.
uint64_t AggregatedFollowCount(int concurrent) {
  sim::Simulator sim(5);
  runtime::TypeRegistry types;
  EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();

  cluster::Client& setup = deployment.NewClient();
  bool ready = false;
  Detach([](cluster::Client* client, bool* ready) -> Task<void> {
    (void)co_await client->Create("user/target", "user");
    *ready = true;
  }(&setup, &ready));
  while (!ready) EXPECT_TRUE(sim.Step());

  int done = 0;
  for (int i = 0; i < concurrent; i++) {
    cluster::Client& client = deployment.NewClient();
    Detach([](cluster::Client* client, int i, int* done) -> Task<void> {
      auto r = co_await client->Invoke("user/target", "follow",
                                       "user/f" + std::to_string(i));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      (*done)++;
    }(&client, i, &done));
  }
  while (done < concurrent) EXPECT_TRUE(sim.Step());

  auto raw = deployment.node(0).db().Get(
      {}, runtime::FieldKey("user/target", retwis::kFollowerCountKey));
  EXPECT_TRUE(raw.ok());
  return DecodeFixed64(raw->data());
}

uint64_t BaselineFollowCount(int concurrent, uint64_t seed) {
  sim::Simulator sim(seed);
  runtime::TypeRegistry types;
  EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  baseline::DisaggregatedDeployment deployment(sim, &types);

  auto& setup = deployment.NewClientEndpoint();
  {
    std::string payload;
    PutLengthPrefixed(&payload, "user/target");
    PutLengthPrefixed(&payload, "user");
    bool ready = false;
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              bool* ready) -> Task<void> {
      auto r = co_await rpc->Call(compute, "fn.create", std::move(payload),
                                  sim::Seconds(1));
      EXPECT_TRUE(r.ok());
      *ready = true;
    }(&setup, deployment.compute(0).id(), std::move(payload), &ready));
    while (!ready) EXPECT_TRUE(sim.Step());
  }

  int done = 0;
  for (int i = 0; i < concurrent; i++) {
    auto& client = deployment.NewClientEndpoint();
    std::string payload;
    PutLengthPrefixed(&payload, "user/target");
    PutLengthPrefixed(&payload, "follow");
    PutLengthPrefixed(&payload, "user/f" + std::to_string(i));
    Detach([](sim::RpcEndpoint* rpc, sim::NodeId compute, std::string payload,
              int* done) -> Task<void> {
      auto r = co_await rpc->Call(compute, "fn.invoke", std::move(payload),
                                  sim::Seconds(2));
      EXPECT_TRUE(r.ok());
      (*done)++;
    }(&client, deployment.compute(0).id(), std::move(payload), &done));
  }
  while (done < concurrent) EXPECT_TRUE(sim.Step());

  auto raw = deployment.storage(0).db().Get(
      {}, runtime::FieldKey("user/target", retwis::kFollowerCountKey));
  EXPECT_TRUE(raw.ok());
  return DecodeFixed64(raw->data());
}

TEST(ConsistencyComparison, AggregatedNeverLosesUpdates) {
  // Invocation linearizability: every one of 40 concurrent follows lands.
  EXPECT_EQ(AggregatedFollowCount(40), 40u);
}

TEST(ConsistencyComparison, BaselinePermitsLostUpdates) {
  // The baseline's follow() is read-modify-write over the network with
  // no isolation: concurrent invocations read the same counter and
  // overwrite each other. With 40 racing follows, some seeds lose
  // updates — which is exactly the anomaly class the paper motivates
  // LambdaObjects with. (Deterministic per seed; we scan a few.)
  bool lost_somewhere = false;
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    uint64_t count = BaselineFollowCount(40, seed);
    EXPECT_LE(count, 40u);
    if (count < 40) lost_somewhere = true;
  }
  EXPECT_TRUE(lost_somewhere)
      << "expected at least one seed to exhibit the lost-update anomaly";
}

TEST(Determinism, IdenticalSeedsReplayIdenticalClusterRuns) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim(seed);
    runtime::TypeRegistry types;
    EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
    cluster::AggregatedDeployment deployment(sim, &types);
    deployment.WaitUntilReady();
    cluster::Client& client = deployment.NewClient();
    int done = 0;
    for (int i = 0; i < 10; i++) {
      Detach([](cluster::Client* client, int i, int* done) -> Task<void> {
        std::string oid = "user/u" + std::to_string(i % 3);
        if (i < 3) (void)co_await client->Create(oid, "user");
        (void)co_await client->Invoke(oid, "create_post", "p" + std::to_string(i));
        (*done)++;
      }(&client, i, &done));
    }
    while (done < 10) EXPECT_TRUE(sim.Step());
    // Fingerprint: final virtual time + executed events + node metrics.
    auto metrics = deployment.node(0).runtime().metrics();
    return std::tuple(sim.Now(), sim.executed_events(), metrics.invocations,
                      metrics.commits);
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(std::get<0>(run(1234)), std::get<0>(run(999)));
}

}  // namespace
}  // namespace lo
