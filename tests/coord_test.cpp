// Coordination tests: Paxos safety under message loss/reordering (the
// property that matters), the replicated config state machine, failure
// detection + shard reconfiguration, and coordinator leader takeover.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "coord/coordinator.h"
#include "coord/paxos.h"

namespace lo::coord {
namespace {

using sim::Detach;
using sim::Task;

TEST(Ballot, TotalOrder) {
  EXPECT_LT((Ballot{1, 2}), (Ballot{2, 1}));
  EXPECT_LT((Ballot{1, 1}), (Ballot{1, 2}));
  EXPECT_EQ((Ballot{3, 3}), (Ballot{3, 3}));
}

TEST(Acceptor, PromisesMonotonically) {
  Acceptor acceptor;
  EXPECT_TRUE(acceptor.HandlePrepare({5, 1}).promised);
  EXPECT_FALSE(acceptor.HandlePrepare({5, 1}).promised);  // equal: rejected
  EXPECT_FALSE(acceptor.HandlePrepare({4, 9}).promised);  // lower round
  EXPECT_TRUE(acceptor.HandlePrepare({6, 1}).promised);
}

TEST(Acceptor, AcceptRespectsPromise) {
  Acceptor acceptor;
  acceptor.HandlePrepare({10, 1});
  EXPECT_FALSE(acceptor.HandleAccept({9, 1}, "old").accepted);
  EXPECT_TRUE(acceptor.HandleAccept({10, 1}, "new").accepted);
  EXPECT_EQ(acceptor.accepted_value(), "new");
  // A later prepare learns the accepted value.
  auto reply = acceptor.HandlePrepare({11, 2});
  ASSERT_TRUE(reply.promised);
  ASSERT_TRUE(reply.accepted_ballot.has_value());
  EXPECT_EQ(reply.accepted_value, "new");
}

class PaxosCluster {
 public:
  PaxosCluster(uint64_t seed, double drop_probability)
      : sim_(seed),
        net_(sim_, sim::NetworkConfig{.jitter_mean = sim::Micros(100),
                                      .drop_probability = drop_probability}) {
    for (sim::NodeId id = 1; id <= 3; id++) {
      rpcs_.push_back(std::make_unique<sim::RpcEndpoint>(net_, id));
      hosts_.push_back(std::make_unique<AcceptorHost>(rpcs_.back().get()));
    }
    // Proposers live on nodes 4 and 5.
    for (sim::NodeId id = 4; id <= 5; id++) {
      rpcs_.push_back(std::make_unique<sim::RpcEndpoint>(net_, id));
      proposers_.push_back(
          std::make_unique<Proposer>(rpcs_.back().get(), std::vector<sim::NodeId>{1, 2, 3}));
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<sim::RpcEndpoint>> rpcs_;
  std::vector<std::unique_ptr<AcceptorHost>> hosts_;
  std::vector<std::unique_ptr<Proposer>> proposers_;
};

TEST(Paxos, SingleProposerDecides) {
  PaxosCluster cluster(1, 0.0);
  Result<std::string> chosen = Status::Unavailable("");
  Detach([](Proposer* proposer, Result<std::string>* out) -> Task<void> {
    *out = co_await proposer->Propose(0, "value-A");
  }(cluster.proposers_[0].get(), &chosen));
  cluster.sim_.Run();
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(*chosen, "value-A");
}

// Safety: two proposers racing on the same slot must agree.
class PaxosSafety : public ::testing::TestWithParam<int> {};

TEST_P(PaxosSafety, CompetingProposersAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  // Lossy, jittery network: up to 20% drops.
  double drop = (GetParam() % 3) * 0.1;
  PaxosCluster cluster(seed, drop);
  Result<std::string> a = Status::Unavailable(""), b = Status::Unavailable("");
  Detach([](Proposer* proposer, Result<std::string>* out) -> Task<void> {
    *out = co_await proposer->Propose(7, "from-A");
  }(cluster.proposers_[0].get(), &a));
  Detach([](Proposer* proposer, Result<std::string>* out) -> Task<void> {
    *out = co_await proposer->Propose(7, "from-B");
  }(cluster.proposers_[1].get(), &b));
  cluster.sim_.Run();
  // With drops both may fail to decide; but *if* both return values,
  // they must be identical (agreement), and any returned value must be
  // one of the two proposed (validity).
  for (const auto* result : {&a, &b}) {
    if (result->ok()) {
      EXPECT_TRUE(**result == "from-A" || **result == "from-B");
    }
  }
  if (a.ok() && b.ok()) {
    EXPECT_EQ(*a, *b) << "Paxos agreement violated";
  }
  // And the acceptors' final accepted values for slot 7 (majority view)
  // must not contain two different chosen values.
  std::map<std::string, int> accepted_counts;
  for (auto& host : cluster.hosts_) {
    const Acceptor* acceptor = host->acceptor(7);
    if (acceptor != nullptr && acceptor->accepted_ballot().has_value()) {
      accepted_counts[acceptor->accepted_value()]++;
    }
  }
  int majorities = 0;
  for (const auto& [value, count] : accepted_counts) {
    if (count >= 2) majorities++;
  }
  EXPECT_LE(majorities, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSafety, ::testing::Range(1, 13));

TEST(ClusterStateTest, CommandsAndCodecRoundTrip) {
  ClusterState state;
  ASSERT_TRUE(state.Apply(CmdSetShard(0, {.epoch = 3, .primary = 10,
                                          .backups = {11, 12}})).ok());
  ASSERT_TRUE(state.Apply(CmdNodeDead(12)).ok());
  ASSERT_TRUE(state.Apply(CmdPlaceObject("user/alice", 0)).ok());
  EXPECT_EQ(state.shards[0].epoch, 3u);
  EXPECT_EQ(state.shards[0].primary, 10u);
  EXPECT_TRUE(state.dead.contains(12));
  EXPECT_EQ(state.directory["user/alice"], 0u);

  auto decoded = ClusterState::Decode(state.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shards[0].primary, 10u);
  EXPECT_EQ(decoded->shards[0].backups, (std::vector<sim::NodeId>{11, 12}));
  EXPECT_TRUE(decoded->dead.contains(12));
  EXPECT_EQ(decoded->directory.size(), 1u);

  ASSERT_TRUE(state.Apply(CmdNodeAlive(12)).ok());
  EXPECT_FALSE(state.dead.contains(12));
  EXPECT_FALSE(state.Apply("Zgarbage").ok());
  EXPECT_FALSE(ClusterState::Decode("junk").ok());
}

class CoordinatorFixture : public ::testing::Test {
 public:
  static constexpr sim::NodeId kCoordA = 1, kCoordB = 2, kCoordC = 3;
  static constexpr sim::NodeId kStore1 = 10, kStore2 = 11, kStore3 = 12;

  CoordinatorFixture() : net_(sim_, sim::NetworkConfig{}) {
    for (sim::NodeId id : {kCoordA, kCoordB, kCoordC}) {
      rpcs_[id] = std::make_unique<sim::RpcEndpoint>(net_, id);
      coordinators_[id] = std::make_unique<CoordinatorNode>(
          rpcs_[id].get(), std::vector<sim::NodeId>{kCoordA, kCoordB, kCoordC});
    }
    for (sim::NodeId id : {kStore1, kStore2, kStore3}) {
      rpcs_[id] = std::make_unique<sim::RpcEndpoint>(net_, id);
      clients_[id] = std::make_unique<CoordClient>(
          rpcs_[id].get(), std::vector<sim::NodeId>{kCoordA, kCoordB, kCoordC},
          [this, id](const ClusterState& state) { pushed_configs_[id] = state; });
    }
  }

  void Bootstrap() {
    bool ok = false;
    Detach([](CoordinatorNode* leader, bool* ok) -> Task<void> {
      ClusterState initial;
      initial.shards[0] = ShardConfig{.epoch = 1, .primary = kStore1,
                                      .backups = {kStore2, kStore3}};
      Status s = co_await leader->Bootstrap(initial);
      EXPECT_TRUE(s.ok()) << s.ToString();
      *ok = s.ok();
    }(coordinators_[kCoordA].get(), &ok));
    sim_.Run();
    ASSERT_TRUE(ok);
  }

  sim::Simulator sim_{11};
  sim::Network net_;
  std::map<sim::NodeId, std::unique_ptr<sim::RpcEndpoint>> rpcs_;
  std::map<sim::NodeId, std::unique_ptr<CoordinatorNode>> coordinators_;
  std::map<sim::NodeId, std::unique_ptr<CoordClient>> clients_;
  std::map<sim::NodeId, ClusterState> pushed_configs_;
};

TEST_F(CoordinatorFixture, BootstrapAndFetchConfig) {
  Bootstrap();
  Result<ClusterState> fetched = Status::Unavailable("");
  Detach([](CoordClient* client, Result<ClusterState>* out) -> Task<void> {
    *out = co_await client->FetchConfig();
  }(clients_[kStore1].get(), &fetched));
  sim_.Run();
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->shards.at(0).primary, kStore1);
  EXPECT_EQ(fetched->shards.at(0).epoch, 1u);
}

TEST_F(CoordinatorFixture, FailureDetectionPromotesBackup) {
  Bootstrap();
  for (auto& [id, coordinator] : coordinators_) coordinator->Start();
  for (auto& [id, client] : clients_) client->Start();
  sim_.RunFor(sim::Millis(100));  // heartbeats flowing

  // Kill the primary storage node.
  net_.SetNodeUp(kStore1, false);
  sim_.RunFor(sim::Millis(300));  // timeout + reconfiguration

  const ClusterState& state = coordinators_[kCoordA]->state();
  EXPECT_TRUE(state.dead.contains(kStore1));
  EXPECT_EQ(state.shards.at(0).primary, kStore2);
  EXPECT_EQ(state.shards.at(0).epoch, 2u);
  EXPECT_EQ(state.shards.at(0).backups, (std::vector<sim::NodeId>{kStore3}));
  // Survivors were pushed the new config.
  ASSERT_TRUE(pushed_configs_.contains(kStore2));
  EXPECT_EQ(pushed_configs_[kStore2].shards.at(0).primary, kStore2);
  EXPECT_GE(coordinators_[kCoordA]->metrics().reconfigurations, 1u);
}

TEST_F(CoordinatorFixture, LeaderTakeoverAfterCoordinatorFailure) {
  Bootstrap();
  for (auto& [id, coordinator] : coordinators_) coordinator->Start();
  for (auto& [id, client] : clients_) client->Start();
  sim_.RunFor(sim::Millis(50));

  ASSERT_TRUE(coordinators_[kCoordA]->is_leader());
  ASSERT_FALSE(coordinators_[kCoordB]->is_leader());
  net_.SetNodeUp(kCoordA, false);
  sim_.RunFor(sim::Millis(500));
  EXPECT_TRUE(coordinators_[kCoordB]->is_leader());
  EXPECT_GE(coordinators_[kCoordB]->metrics().leadership_takeovers, 1u);
  // The new leader recovered the replicated log: it knows the shard map.
  EXPECT_EQ(coordinators_[kCoordB]->state().shards.at(0).primary, kStore1);

  // And it can serve config queries now.
  Result<ClusterState> fetched = Status::Unavailable("");
  Detach([](CoordClient* client, Result<ClusterState>* out) -> Task<void> {
    *out = co_await client->FetchConfig();
  }(clients_[kStore2].get(), &fetched));
  sim_.RunFor(sim::Millis(100));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->shards.at(0).epoch, 1u);
}

TEST_F(CoordinatorFixture, PlaceObjectThroughPaxos) {
  Bootstrap();
  Result<std::string> placed = Status::Unavailable("");
  Detach([](sim::RpcEndpoint* rpc, Result<std::string>* out) -> Task<void> {
    std::string payload;
    PutLengthPrefixed(&payload, "user/bob");
    PutVarint32(&payload, 0);
    *out = co_await rpc->Call(kCoordA, "coord.place", payload, sim::Millis(100));
  }(rpcs_[kStore1].get(), &placed));
  sim_.Run();
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();
  EXPECT_EQ(coordinators_[kCoordA]->state().directory.at("user/bob"), 0u);
}

}  // namespace
}  // namespace lo::coord
