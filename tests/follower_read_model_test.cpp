// Staleness-aware model checking for epoch-gated follower reads.
//
// A primary ParallelNode's group-commit stream is shipped — in commit
// order, on one apply thread, with a seeded artificial lag — to two
// backup ParallelNodes (runtime/executor.h ApplyReplicated), the
// real-threaded stand-in for the replicator's ordered "repl.apply"
// stream. Seeded writer threads increment their own objects at the
// primary and read them back at random backups through the epoch gate
// (InvokeRead), holding the token a real client would: the primary's
// apply-epoch observed right after each write ack.
//
// Each staleness contract is replayed against the sequential model of
// the writer's own history:
//   strict   an admitted read returns exactly the writer's last acked
//            post-state (read-your-writes; lagging backups must bounce
//            with kEpochBehind, never serve stale state)
//   bounded  an admitted read may trail, but never below the value the
//            writer had acked by apply-epoch (token - staleness_epochs)
//   eventual every replica serves unconditionally; values never exceed
//            the acked history, and all replicas converge once the
//            stream drains
// Any violation fails with the seed printed for deterministic replay.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/executor.h"
#include "storage/env.h"

namespace lo::runtime {
namespace {

constexpr size_t kWriters = 4;
constexpr size_t kOpsPerWriter = 150;
constexpr uint64_t kSeeds[] = {101, 202, 303, 404, 505};

std::string Oid(size_t i) { return "obj/" + std::to_string(i); }

// A monotone counter: "add" returns the post-state, "read" is the
// deterministic read-only method the result cache and the epoch gate
// serve.
void RegisterCounterType(TypeRegistry* types) {
  ObjectType type;
  type.name = "counter";
  type.methods["add"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx,
                   std::string arg) -> sim::Task<Result<std::string>> {
        uint64_t delta = arg.empty() ? 1 : std::stoull(arg);
        auto current = co_await ctx.Get("value");
        uint64_t value = current.ok() ? std::stoull(*current) : 0;
        value += delta;
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", std::to_string(value)));
        co_return std::to_string(value);
      }};
  type.methods["read"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](InvocationContext& ctx,
                   std::string) -> sim::Task<Result<std::string>> {
        auto value = co_await ctx.Get("value");
        co_return value.ok() ? *value : std::string("0");
      }};
  LO_CHECK(types->Register(std::move(type)).ok());
}

// One replica: its own MemEnv-backed DB plus a ParallelNode over it.
struct Replica {
  explicit Replica(const TypeRegistry* types, ParallelNodeOptions options = {}) {
    storage::Options db_options;
    db_options.env = &env;
    db_options.serialize_access = true;
    db = std::move(*storage::DB::Open(db_options, "/db"));
    node = std::make_unique<ParallelNode>(db.get(), types, options);
  }
  storage::MemEnv env;
  std::unique_ptr<storage::DB> db;
  std::unique_ptr<ParallelNode> node;
};

// Ships the primary's commit stream to every backup in order, on one
// apply thread. A seeded per-batch delay leaves the backups lagging the
// primary, so strict tokens actually have something to bounce off.
class Shipper {
 public:
  Shipper(std::vector<ParallelNode*> backups, uint64_t seed,
          int64_t max_delay_us)
      : backups_(std::move(backups)),
        rng_(seed),
        max_delay_us_(max_delay_us),
        thread_([this] { Loop(); }) {}

  ~Shipper() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  // Called from the primary committer's on_commit hook, so batches
  // arrive here already in commit order.
  void Push(uint64_t seq, const storage::WriteBatch& batch) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back(seq, batch);
    }
    cv_.notify_all();
  }

  // Blocks until every batch up to `seq` has been applied on all backups.
  void WaitUntilShipped(uint64_t seq) {
    std::unique_lock<std::mutex> lock(mu_);
    shipped_cv_.wait(lock, [&] { return shipped_ >= seq; });
  }

 private:
  void Loop() {
    for (;;) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      auto [seq, batch] = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      if (max_delay_us_ > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng_.Uniform(static_cast<uint64_t>(max_delay_us_))));
      }
      for (ParallelNode* backup : backups_) {
        LO_CHECK(backup->ApplyReplicated(batch, seq).ok());
      }
      lock.lock();
      shipped_ = seq;
      shipped_cv_.notify_all();
    }
  }

  std::vector<ParallelNode*> backups_;
  Rng rng_;
  int64_t max_delay_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable shipped_cv_;
  std::deque<std::pair<uint64_t, storage::WriteBatch>> queue_;
  uint64_t shipped_ = 0;
  bool stop_ = false;
  std::thread thread_;  // last: started after the fields it reads
};

// Primary + 2 backups + shipper, with the writers' objects pre-created
// and fully replicated before any thread starts.
struct ReplicaSet {
  ReplicaSet(uint64_t seed, int64_t ship_delay_us) {
    RegisterCounterType(&types);
    backups.push_back(std::make_unique<Replica>(&types));
    backups.push_back(std::make_unique<Replica>(&types));
    shipper = std::make_unique<Shipper>(
        std::vector<ParallelNode*>{backups[0]->node.get(),
                                   backups[1]->node.get()},
        seed * 31, ship_delay_us);
    ParallelNodeOptions options;
    options.lanes = 4;
    options.group_commit.max_batch_delay_us = 100;
    options.group_commit.on_commit = [s = shipper.get()](
                                         uint64_t seq,
                                         const storage::WriteBatch& batch) {
      s->Push(seq, batch);
    };
    primary = std::make_unique<Replica>(&types, options);
    for (size_t i = 0; i < kWriters; i++) {
      LO_CHECK(primary->node->CreateObject(Oid(i), "counter").get().ok());
    }
    shipper->WaitUntilShipped(primary->node->apply_epoch());
  }

  ParallelNode& backup(size_t i) { return *backups[i]->node; }

  TypeRegistry types;
  std::vector<std::unique_ptr<Replica>> backups;
  std::unique_ptr<Shipper> shipper;  // before primary: outlives its hook
  std::unique_ptr<Replica> primary;
};

struct WriterLog {
  std::vector<std::string> errors;  // gtest is not thread-safe; collect
  uint64_t writes = 0;
  uint64_t follower_served = 0;
  uint64_t bounces = 0;
};

uint64_t ParseValue(const std::string& s) { return std::stoull(s); }

// After the run: the shipped stream drained, every replica must agree
// with the sequential model (each writer's final acked value).
void VerifyConvergence(ReplicaSet& set, const std::vector<uint64_t>& finals) {
  uint64_t final_epoch = set.primary->node->apply_epoch();
  set.shipper->WaitUntilShipped(final_epoch);
  for (size_t t = 0; t < kWriters; t++) {
    auto at_primary = set.primary->node->InvokeRead(Oid(t), "read", "", 0).get();
    ASSERT_TRUE(at_primary.ok()) << at_primary.status().ToString();
    EXPECT_EQ(ParseValue(*at_primary), finals[t]) << Oid(t);
    for (size_t b = 0; b < 2; b++) {
      // Gating on the primary's final epoch proves the backup caught up.
      auto at_backup =
          set.backup(b).InvokeRead(Oid(t), "read", "", final_epoch).get();
      ASSERT_TRUE(at_backup.ok())
          << "backup " << b << ": " << at_backup.status().ToString();
      EXPECT_EQ(ParseValue(*at_backup), finals[t])
          << Oid(t) << " diverged on backup " << b;
    }
  }
}

TEST(FollowerReadModel, StrictReadYourWritesHolds) {
  uint64_t served_all_seeds = 0;
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("replay with seed=" + std::to_string(seed));
    ReplicaSet set(seed, /*ship_delay_us=*/300);
    std::vector<WriterLog> logs(kWriters);
    std::vector<uint64_t> finals(kWriters, 0);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kWriters; t++) {
      threads.emplace_back([&set, &log = logs[t], &final = finals[t], seed, t] {
        Rng rng(seed * 7919 + t);
        const std::string oid = Oid(t);
        uint64_t acked = 0;   // last post-state this writer saw acked
        uint64_t token = 0;   // primary apply-epoch at that ack
        for (size_t i = 0; i < kOpsPerWriter; i++) {
          if (rng.Uniform(100) < 60) {
            auto r = set.primary->node->Invoke(oid, "add", "1").get();
            if (!r.ok()) {
              log.errors.push_back("add: " + r.status().ToString());
              continue;
            }
            if (ParseValue(*r) != acked + 1) {
              log.errors.push_back("lost update: acked " + *r + " after " +
                                   std::to_string(acked));
            }
            acked = ParseValue(*r);
            token = set.primary->node->apply_epoch();
            log.writes++;
          } else {
            auto r = set.backup(rng.Uniform(2))
                         .InvokeRead(oid, "read", "", token)
                         .get();
            if (!r.ok() && r.status().code() == StatusCode::kEpochBehind) {
              // The backup lags the token — the only legal refusal; the
              // client falls back to the primary, which always covers
              // its own commit stream.
              log.bounces++;
              r = set.primary->node->InvokeRead(oid, "read", "", token).get();
            } else if (r.ok()) {
              log.follower_served++;
            }
            if (!r.ok()) {
              log.errors.push_back("read: " + r.status().ToString());
              continue;
            }
            if (ParseValue(*r) != acked) {
              log.errors.push_back("RYW violated: read " + *r +
                                   ", last acked " + std::to_string(acked));
            }
          }
        }
        final = acked;
      });
    }
    for (auto& thread : threads) thread.join();
    uint64_t served = 0, bounced = 0;
    for (size_t t = 0; t < kWriters; t++) {
      for (const auto& error : logs[t].errors) {
        ADD_FAILURE() << "writer " << t << ": " << error;
      }
      served += logs[t].follower_served;
      bounced += logs[t].bounces;
    }
    // How much the gate admits per seed is schedule-dependent (a slow
    // shipper can legally bounce every read of one run — bounces are the
    // legal refusal), so liveness is asserted across the whole seed set.
    (void)bounced;
    served_all_seeds += served;
    VerifyConvergence(set, finals);
  }
  // The gate must have admitted real follower traffic somewhere in the
  // matrix, otherwise the strict contract was never exercised.
  EXPECT_GT(served_all_seeds, 0u) << "no strict read was ever follower-served";
}

TEST(FollowerReadModel, BoundedStalenessNeverExceedsSlack) {
  constexpr uint64_t kSlack = 4;  // staleness_epochs
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("replay with seed=" + std::to_string(seed));
    ReplicaSet set(seed, /*ship_delay_us=*/300);
    std::vector<WriterLog> logs(kWriters);
    std::vector<uint64_t> finals(kWriters, 0);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kWriters; t++) {
      threads.emplace_back([&set, &log = logs[t], &final = finals[t], seed, t] {
        Rng rng(seed * 104729 + t);
        const std::string oid = Oid(t);
        // (token, value) per ack, tokens nondecreasing: the sequential
        // model a bounded read is replayed against.
        std::vector<std::pair<uint64_t, uint64_t>> history;
        uint64_t acked = 0;
        for (size_t i = 0; i < kOpsPerWriter; i++) {
          if (rng.Uniform(100) < 60) {
            auto r = set.primary->node->Invoke(oid, "add", "1").get();
            if (!r.ok()) {
              log.errors.push_back("add: " + r.status().ToString());
              continue;
            }
            acked = ParseValue(*r);
            history.emplace_back(set.primary->node->apply_epoch(), acked);
            log.writes++;
          } else {
            uint64_t token = history.empty() ? 0 : history.back().first;
            uint64_t min_epoch = token > kSlack ? token - kSlack : 0;
            auto r = set.backup(rng.Uniform(2))
                         .InvokeRead(oid, "read", "", min_epoch)
                         .get();
            if (!r.ok() && r.status().code() == StatusCode::kEpochBehind) {
              log.bounces++;
              r = set.primary->node
                      ->InvokeRead(oid, "read", "", min_epoch)
                      .get();
            } else if (r.ok()) {
              log.follower_served++;
            }
            if (!r.ok()) {
              log.errors.push_back("read: " + r.status().ToString());
              continue;
            }
            uint64_t seen = ParseValue(*r);
            // Floor: everything this writer had acked by apply-epoch
            // `min_epoch` must be visible; ceiling: no value from the
            // future of its own history.
            uint64_t floor = 0;
            for (const auto& [tok, value] : history) {
              if (tok <= min_epoch) floor = value;
            }
            if (seen < floor || seen > acked) {
              log.errors.push_back(
                  "bounded staleness violated: read " + *r + ", floor " +
                  std::to_string(floor) + ", acked " + std::to_string(acked));
            }
          }
        }
        final = acked;
      });
    }
    for (auto& thread : threads) thread.join();
    uint64_t served = 0;
    for (size_t t = 0; t < kWriters; t++) {
      for (const auto& error : logs[t].errors) {
        ADD_FAILURE() << "writer " << t << ": " << error;
      }
      served += logs[t].follower_served;
    }
    EXPECT_GT(served, 0u) << "no bounded read was ever follower-served";
    VerifyConvergence(set, finals);
  }
}

TEST(FollowerReadModel, EventualServesUnconditionallyAndConverges) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("replay with seed=" + std::to_string(seed));
    ReplicaSet set(seed, /*ship_delay_us=*/300);
    std::vector<WriterLog> logs(kWriters);
    std::vector<uint64_t> finals(kWriters, 0);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kWriters; t++) {
      threads.emplace_back([&set, &log = logs[t], &final = finals[t], seed, t] {
        Rng rng(seed * 1299709 + t);
        const std::string oid = Oid(t);
        uint64_t acked = 0;
        for (size_t i = 0; i < kOpsPerWriter; i++) {
          if (rng.Uniform(100) < 60) {
            auto r = set.primary->node->Invoke(oid, "add", "1").get();
            if (!r.ok()) {
              log.errors.push_back("add: " + r.status().ToString());
              continue;
            }
            acked = ParseValue(*r);
            log.writes++;
          } else {
            // min_epoch 0 = eventual: the backup must serve, never bounce.
            auto r = set.backup(rng.Uniform(2))
                         .InvokeRead(oid, "read", "", 0)
                         .get();
            if (!r.ok()) {
              log.errors.push_back("eventual read refused: " +
                                   r.status().ToString());
              continue;
            }
            log.follower_served++;
            // Stale is fine; time travel into the writer's own future is
            // not (no one else writes this object).
            if (ParseValue(*r) > acked) {
              log.errors.push_back("read from the future: " + *r +
                                   " > acked " + std::to_string(acked));
            }
          }
        }
        final = acked;
      });
    }
    for (auto& thread : threads) thread.join();
    uint64_t served = 0;
    for (size_t t = 0; t < kWriters; t++) {
      for (const auto& error : logs[t].errors) {
        ADD_FAILURE() << "writer " << t << ": " << error;
      }
      served += logs[t].follower_served;
    }
    EXPECT_GT(served, 0u);
    VerifyConvergence(set, finals);
  }
}

// Deterministic single-threaded walk of the gate + invalidation
// ordering: a backup bounces tokens it has not applied, serves exactly
// the shipped prefix otherwise, hits its result cache on repeats, and
// drops cached entries when a shipped batch overwrites their read set
// (counted as remote invalidations) *before* the epoch admits the next
// gated read.
TEST(FollowerReadModel, EpochGateAndCacheInvalidationOrdering) {
  TypeRegistry types;
  RegisterCounterType(&types);
  Replica backup(&types);

  std::mutex mu;
  std::vector<std::pair<uint64_t, storage::WriteBatch>> pending;
  ParallelNodeOptions options;
  options.lanes = 2;
  options.group_commit.on_commit = [&](uint64_t seq,
                                       const storage::WriteBatch& batch) {
    std::lock_guard<std::mutex> lock(mu);
    pending.emplace_back(seq, batch);
  };
  Replica primary(&types, options);
  auto ship = [&] {
    std::vector<std::pair<uint64_t, storage::WriteBatch>> batches;
    {
      std::lock_guard<std::mutex> lock(mu);
      batches.swap(pending);
    }
    for (auto& [seq, batch] : batches) {
      ASSERT_TRUE(backup.node->ApplyReplicated(std::move(batch), seq).ok());
    }
  };

  const std::string oid = Oid(0);
  ASSERT_TRUE(primary.node->CreateObject(oid, "counter").get().ok());
  ship();

  ASSERT_EQ(*primary.node->Invoke(oid, "add", "1").get(), "1");
  uint64_t token1 = primary.node->apply_epoch();
  ASSERT_GT(token1, 0u);

  // Not shipped yet: the token bounces, an ungated read serves stale.
  auto gated = backup.node->InvokeRead(oid, "read", "", token1).get();
  ASSERT_FALSE(gated.ok());
  EXPECT_EQ(gated.status().code(), StatusCode::kEpochBehind);
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", 0).get(), "0");

  ship();
  EXPECT_EQ(backup.node->apply_epoch(), token1);
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", token1).get(), "1");

  // Repeat is a backup-local cache hit.
  size_t lane = backup.node->LaneFor(oid);
  auto before = backup.node->lane_runtime(lane).cache_stats();
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", token1).get(), "1");
  auto after = backup.node->lane_runtime(lane).cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1);

  // The next write bounces its own token until shipped; the *old* token
  // may still be served (legal: it only promises state >= token1).
  ASSERT_EQ(*primary.node->Invoke(oid, "add", "1").get(), "2");
  uint64_t token2 = primary.node->apply_epoch();
  ASSERT_GT(token2, token1);
  gated = backup.node->InvokeRead(oid, "read", "", token2).get();
  ASSERT_FALSE(gated.ok());
  EXPECT_EQ(gated.status().code(), StatusCode::kEpochBehind);
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", token1).get(), "1");

  // Shipping the overwrite must invalidate the cached "1" before the
  // epoch admits the gated read — never a stale cache hit at token2.
  ship();
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", token2).get(), "2");
  auto stats = backup.node->lane_runtime(lane).cache_stats();
  EXPECT_GE(stats.remote_invalidations, 1u)
      << "shipped write-set never invalidated the backup cache";

  // The gated path refuses mutating methods outright.
  auto mutate = backup.node->InvokeRead(oid, "add", "1", 0).get();
  ASSERT_FALSE(mutate.ok());
  EXPECT_EQ(mutate.status().code(), StatusCode::kNotPrimary);
  EXPECT_EQ(*backup.node->InvokeRead(oid, "read", "", token2).get(), "2");
}

}  // namespace
}  // namespace lo::runtime
