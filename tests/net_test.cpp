// Tests for the src/net subsystem: the shared frame codec (round-trip
// plus seeded fuzzing of torn/oversized/corrupt frames), the event loop
// (timers, cross-thread RunInLoop), the TCP RPC client/server pair
// (echo, multiplexing under threads, deadline expiry and server-side
// shedding, reconnect with backoff across a server restart), the
// RemoteClient retry policy, and a multi-process loopback smoke test
// that spawns the real lambdastore-server binary and runs a small
// ReTwis slice against it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <spawn.h>
#include <stdio.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

extern char** environ;

#include <sys/uio.h>

#include "common/coding.h"
#include "common/rng.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/remote_client.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/send_queue.h"
#include "retwis/retwis.h"

namespace lo::net {
namespace {

// ---------------------------------------------------------------------
// Frame codec

TEST(Frame, RequestRoundTrip) {
  RequestFrame request;
  request.rpc_id = 42;
  request.trace_id = 7;
  request.span_id = 9;
  request.deadline_us = 123456789;
  request.service = "lambda.invoke";
  const std::string payload("payload\0with\0nuls", 17);
  request.payload = payload;
  std::string wire = EncodeRequest(request);

  size_t consumed = 0;
  std::string_view body;
  FrameStats stats;
  ASSERT_EQ(TryDecodeFrame(wire, &consumed, &body, &stats), DecodeResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  Message message;
  ASSERT_TRUE(DecodeMessage(body, &message, &stats));
  ASSERT_EQ(message.kind, MessageKind::kRequest);
  EXPECT_EQ(message.request.rpc_id, 42u);
  EXPECT_EQ(message.request.trace_id, 7u);
  EXPECT_EQ(message.request.span_id, 9u);
  EXPECT_EQ(message.request.deadline_us, 123456789);
  EXPECT_EQ(message.request.service, "lambda.invoke");
  EXPECT_EQ(message.request.payload, request.payload);
  EXPECT_EQ(stats.frames_decoded.load(), 1u);
  EXPECT_EQ(stats.rejects(), 0u);
}

TEST(Frame, ResponseRoundTripOkAndError) {
  for (bool ok : {true, false}) {
    Result<std::string> result =
        ok ? Result<std::string>(std::string("value"))
           : Result<std::string>(Status::NotFound("no such service"));
    std::string wire = EncodeResponse(77, result);
    size_t consumed = 0;
    std::string_view body;
    ASSERT_EQ(TryDecodeFrame(wire, &consumed, &body), DecodeResult::kOk);
    Message message;
    ASSERT_TRUE(DecodeMessage(body, &message));
    ASSERT_EQ(message.kind, MessageKind::kResponse);
    EXPECT_EQ(message.response.rpc_id, 77u);
    if (ok) {
      EXPECT_EQ(message.response.code, StatusCode::kOk);
      EXPECT_EQ(message.response.body, "value");
    } else {
      EXPECT_EQ(message.response.code, StatusCode::kNotFound);
      EXPECT_EQ(message.response.body, "no such service");
    }
  }
}

TEST(Frame, TornFrameNeedsMore) {
  RequestFrame request;
  request.rpc_id = 1;
  request.service = "svc";
  request.payload = "0123456789";
  std::string wire = EncodeRequest(request);
  // Every strict prefix is incomplete, never corrupt: a stream decoder
  // must keep waiting for bytes, not kill the connection.
  for (size_t len = 0; len < wire.size(); len++) {
    size_t consumed = 0;
    std::string_view body;
    EXPECT_EQ(TryDecodeFrame(std::string_view(wire).substr(0, len), &consumed,
                             &body),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(Frame, OversizedLengthIsCorrupt) {
  // A torn/garbage length field larger than kMaxFrameBytes must be
  // rejected immediately — waiting for 4GiB that never arrives would
  // stall the stream forever.
  std::string wire;
  PutFixed32(&wire, 0xffffffffu);
  PutFixed32(&wire, 0);  // bogus crc; never reached
  FrameStats stats;
  size_t consumed = 0;
  std::string_view body;
  EXPECT_EQ(TryDecodeFrame(wire, &consumed, &body, &stats),
            DecodeResult::kCorrupt);
  EXPECT_EQ(stats.oversize_rejects.load(), 1u);
}

TEST(Frame, CorruptByteNeverDecodesOk) {
  RequestFrame request;
  request.rpc_id = 99;
  request.trace_id = 3;
  request.deadline_us = 1000;
  request.service = "lambda.invoke";
  request.payload = "some payload bytes";
  const std::string wire = EncodeRequest(request);
  // Flip every single byte (all 8 bit positions): no mutation of header
  // or body may ever yield a successfully decoded frame.
  for (size_t i = 0; i < wire.size(); i++) {
    for (int bit = 0; bit < 8; bit++) {
      std::string mutated = wire;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      size_t consumed = 0;
      std::string_view body;
      FrameStats stats;
      DecodeResult result = TryDecodeFrame(mutated, &consumed, &body, &stats);
      if (result == DecodeResult::kOk) {
        // The only acceptable kOk is a body-length mutation that made the
        // frame *shorter* and the CRC still matching — impossible with
        // CRC over the body. Flag any kOk as a codec hole.
        FAIL() << "bit flip at byte " << i << " bit " << bit
               << " decoded as kOk";
      }
    }
  }
}

TEST(Frame, SeededFuzzNeverCrashesOrFalselyAccepts) {
  Rng rng(20240806);
  RequestFrame request;
  request.rpc_id = 5;
  request.service = "fuzz.target";
  FrameStats stats;
  for (int round = 0; round < 2000; round++) {
    std::string wire;
    uint64_t shape = rng.Uniform(3);
    if (shape == 0) {
      // Pure garbage.
      wire = rng.Bytes(rng.Uniform(64));
    } else {
      std::string payload = rng.Bytes(rng.Uniform(128));
      request.payload = payload;
      request.deadline_us = static_cast<int64_t>(rng.Uniform(1 << 30));
      wire = EncodeRequest(request);
      if (shape == 1 && !wire.empty()) {
        // Mutate 1-4 random bytes.
        uint64_t flips = 1 + rng.Uniform(4);
        for (uint64_t f = 0; f < flips; f++) {
          size_t pos = rng.Uniform(wire.size());
          wire[pos] = static_cast<char>(rng.Next());
        }
      } else if (shape == 2) {
        // Truncate.
        wire.resize(rng.Uniform(wire.size() + 1));
      }
    }
    size_t consumed = 0;
    std::string_view body;
    DecodeResult result = TryDecodeFrame(wire, &consumed, &body, &stats);
    if (result == DecodeResult::kOk) {
      // Whatever decodes must carry a CRC-consistent body; decoding the
      // message may still fail (mutations confined to the payload change
      // the CRC, so kOk here means the frame was untouched or truncation
      // landed exactly on the frame boundary).
      Message message;
      if (DecodeMessage(body, &message)) {
        ASSERT_EQ(message.kind, MessageKind::kRequest);
        EXPECT_EQ(message.request.rpc_id, 5u);
      }
    }
  }
}

TEST(Frame, DecodeMessageRejectsMalformedBody) {
  FrameStats stats;
  Message message;
  EXPECT_FALSE(DecodeMessage("", &message, &stats));
  EXPECT_FALSE(DecodeMessage("\x07garbage", &message, &stats));  // bad kind
  std::string truncated_request;
  truncated_request.push_back('\0');  // kRequest, then nothing
  EXPECT_FALSE(DecodeMessage(truncated_request, &message, &stats));
  EXPECT_EQ(stats.malformed_rejects.load(), 3u);
}

// ---------------------------------------------------------------------
// Event loop

TEST(EventLoop, TimersFireInOrderAndCancel) {
  EventLoop loop;
  std::vector<int> fired;
  std::thread runner([&loop] { loop.Run(); });
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  loop.RunInLoop([&] {
    loop.AddTimer(30'000, [&] { fired.push_back(3); });
    loop.AddTimer(10'000, [&] { fired.push_back(1); });
    TimerId cancelled = loop.AddTimer(20'000, [&] { fired.push_back(2); });
    EXPECT_TRUE(loop.CancelTimer(cancelled));
    loop.AddTimer(50'000, [&] {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  }
  loop.Stop();
  runner.join();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 3);
}

TEST(EventLoop, RunInLoopFromManyThreads) {
  EventLoop loop;
  std::thread runner([&loop] { loop.Run(); });
  std::atomic<int> count{0};
  constexpr int kThreads = 8, kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; i++) {
        loop.RunInLoop([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Flush: a final marker task queued after all others.
  std::promise<void> flushed;
  loop.RunInLoop([&] { flushed.set_value(); });
  flushed.get_future().wait();
  loop.Stop();
  runner.join();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// RPC client/server over loopback

TEST(Rpc, EchoAndUnknownService) {
  RpcServer server;
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  RpcClient client;
  auto echoed = client.CallSync(address, "echo", "hello frames", 1'000'000);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(*echoed, "hello frames");

  auto missing = client.CallSync(address, "nope", "x", 1'000'000);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  client.Stop();
  server.Stop();
  EXPECT_GE(server.stats().requests.load(), 2u);
  EXPECT_EQ(server.frame_stats().rejects(), 0u);
}

TEST(Rpc, ServerRejectsCorruptFrame) {
  RpcServer server;
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  // Hand-corrupt a frame and push it through a raw client; the server
  // must reject it (CRC) and close the stream, never dispatch.
  RequestFrame request;
  request.rpc_id = 1;
  request.service = "echo";
  request.payload = "boom";
  std::string wire = EncodeRequest(request);
  wire[wire.size() - 1] ^= 0x01;  // flip a payload bit

  RpcClient prober;  // used only to learn the address parses; raw socket below
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  // The server closes the corrupted connection: read() returns EOF.
  char buf[16];
  ssize_t n = ::read(fd, buf, sizeof(buf));
  EXPECT_EQ(n, 0);
  ::close(fd);
  prober.Stop();
  server.Stop();
  EXPECT_EQ(server.frame_stats().crc_rejects.load(), 1u);
  EXPECT_EQ(server.stats().requests.load(), 0u);
}

TEST(Rpc, DeadlineExpiryClientAndServerShed) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  RpcServer server;
  // First call blocks the handler (on the loop thread) until released;
  // the second call's deadline expires while its frame waits in the
  // socket buffer behind the blocked handler, so the server sheds it on
  // dispatch instead of running it.
  server.Handle("slow", [&](RpcServer::Request request,
                            RpcServer::Responder respond) {
    if (request.payload == "block") {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::seconds(5), [&] { return release; });
    }
    respond(std::string("done"));
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  RpcClient client;
  std::promise<Result<std::string>> blocked_result;
  client.Call(address, "slow", "block", 2'000'000,
              [&](Result<std::string> result) {
                blocked_result.set_value(std::move(result));
              });
  // Wait until the blocking request is actually inside the handler, so
  // the second frame is guaranteed to queue behind it.
  for (int i = 0; i < 1000 && server.stats().requests.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().requests.load(), 1u);
  // Second call: 30ms deadline; the loop thread stays blocked well past
  // it. The client times out locally...
  auto shed = client.CallSync(address, "slow", "fast", 30'000);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kTimeout);
  // ...and only after the deadline is long past (the loop's timer wheel
  // may fire up to one 1ms tick early) does the handler unblock, so the
  // server dispatches an unambiguously expired frame.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  auto blocked = blocked_result.get_future().get();
  EXPECT_TRUE(blocked.ok());
  // Give the server a beat to process the stale frame and shed it.
  for (int i = 0; i < 1000 && server.stats().deadline_shed.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().deadline_shed.load(), 1u);
  client.Stop();
  server.Stop();
}

TEST(Rpc, CallTimesOutWhenServerNeverResponds) {
  RpcServer server;
  std::vector<RpcServer::Responder> parked;
  std::mutex parked_mu;
  server.Handle("hold", [&](RpcServer::Request, RpcServer::Responder respond) {
    std::lock_guard<std::mutex> lock(parked_mu);
    parked.push_back(std::move(respond));  // never answered
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  RpcClient client;
  auto started = std::chrono::steady_clock::now();
  auto result = client.CallSync(address, "hold", "x", 80'000);
  auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
  EXPECT_EQ(client.stats().timeouts.load(), 1u);
  client.Stop();
  {
    // Responders must die before the server (they reference it).
    std::lock_guard<std::mutex> lock(parked_mu);
    parked.clear();
  }
  server.Stop();
}

TEST(Rpc, ReconnectWithBackoffAfterServerRestart) {
  auto echo = [](RpcServer::Request request, RpcServer::Responder respond) {
    respond(std::string(request.payload));
  };
  RpcServerOptions server_options;
  auto server = std::make_unique<RpcServer>(server_options);
  server->Handle("echo", echo);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();
  std::string address = "127.0.0.1:" + std::to_string(port);

  RpcClient client;
  auto first = client.CallSync(address, "echo", "one", 1'000'000);
  ASSERT_TRUE(first.ok());

  // Kill the server; the established connection drops.
  server->Stop();
  server.reset();

  // Re-issue with a generous deadline while restarting the server on the
  // SAME port in a racing thread: the client's reconnect-with-backoff
  // must eventually re-dial and the queued call must complete.
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server_options.port = port;
    server = std::make_unique<RpcServer>(server_options);
    server->Handle("echo", echo);
    // The port lingers in TIME_WAIT-adjacent states occasionally; retry.
    for (int i = 0; i < 50; i++) {
      if (server->Start().ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    FAIL() << "could not rebind port " << port;
  });
  // If this call races ahead of the loop thread noticing the close, it
  // counts as on-the-wire and fails Unavailable per the client contract
  // (the caller cannot know whether it executed) — retry it like a real
  // caller would. The reconnect machinery is still what must deliver.
  Result<std::string> second = Status::Unavailable("not sent");
  for (int i = 0; i < 50 && !second.ok(); i++) {
    second = client.CallSync(address, "echo", "two", 5'000'000);
  }
  restarter.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, "two");
  EXPECT_GE(client.stats().reconnects.load(), 1u);
  client.Stop();
  server->Stop();
}

TEST(Rpc, MultiplexedEchoConcurrent) {
  RpcServer server;
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  RpcClient client;  // one client, one connection: all calls multiplex
  constexpr int kThreads = 8, kCallsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; i++) {
        std::string msg = "t" + std::to_string(t) + "-" + std::to_string(i);
        auto result = client.CallSync(address, "echo", msg, 5'000'000);
        if (!result.ok() || *result != msg) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client.stats().calls.load(),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  // One connection carried everything: multiplexing, not conn-per-call.
  EXPECT_EQ(client.stats().connects.load(), 1u);
  client.Stop();
  server.Stop();
}

TEST(RemoteClient, RetriesTransientFailuresWithSameToken) {
  std::atomic<int> attempts{0};
  std::mutex tokens_mu;
  std::vector<std::string> tokens;
  RpcServer server;
  server.Handle("lambda.invoke", [&](RpcServer::Request request,
                                     RpcServer::Responder respond) {
    Reader reader{request.payload};
    std::string_view oid, method, argument, token;
    ASSERT_TRUE(reader.GetLengthPrefixed(&oid));
    ASSERT_TRUE(reader.GetLengthPrefixed(&method));
    ASSERT_TRUE(reader.GetLengthPrefixed(&argument));
    ASSERT_TRUE(reader.GetLengthPrefixed(&token));
    {
      std::lock_guard<std::mutex> lock(tokens_mu);
      tokens.emplace_back(token);
    }
    if (attempts.fetch_add(1) < 2) {
      respond(Status::Unavailable("warming up"));  // transient: retried
    } else {
      respond(std::string("ok:") + std::string(argument));
    }
  });
  server.Handle("lambda.create", [](RpcServer::Request,
                                    RpcServer::Responder respond) {
    respond(Status::InvalidArgument("bad type"));
  });
  ASSERT_TRUE(server.Start().ok());

  RpcClient rpc;
  RemoteClientOptions options;
  options.retry_backoff_us = 1'000;  // keep the test fast
  options.retry_backoff_max_us = 4'000;
  RemoteClient remote(&rpc, {"127.0.0.1:" + std::to_string(server.port())},
                      options);
  auto result = remote.Invoke("user1", "get_timeline", "10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "ok:10");
  EXPECT_EQ(remote.metrics().retries, 2u);
  ASSERT_EQ(tokens.size(), 3u);
  // Idempotency: every retry of one logical request reuses one token.
  EXPECT_EQ(tokens[0], tokens[1]);
  EXPECT_EQ(tokens[1], tokens[2]);

  // Application errors surface immediately, no retry.
  uint64_t retries_before = remote.metrics().retries;
  auto created = remote.Create("user2", "nosuch");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(remote.metrics().retries, retries_before);

  rpc.Stop();
  server.Stop();
}

TEST(RemoteClient, WrongShardSurfacesTypedStatusAndRedirectsWithHook) {
  // `wrong` always bounces; `right` serves. A directory-routed client
  // starts with a stale route to `wrong` and must follow the redirect.
  RpcServer wrong;
  wrong.Handle("lambda.invoke",
               [](RpcServer::Request, RpcServer::Responder respond) {
                 respond(Status::WrongShard("object not served here"));
               });
  RpcServer right;
  right.Handle("lambda.invoke",
               [](RpcServer::Request, RpcServer::Responder respond) {
                 respond(std::string("served"));
               });
  ASSERT_TRUE(wrong.Start().ok());
  ASSERT_TRUE(right.Start().ok());
  const std::string wrong_address = "127.0.0.1:" + std::to_string(wrong.port());
  const std::string right_address = "127.0.0.1:" + std::to_string(right.port());

  RpcClient rpc;
  // Without a misroute hook the typed status surfaces immediately — no
  // backoff, no burned retry budget.
  {
    RemoteClient remote(&rpc, {wrong_address});
    auto result = remote.Invoke("user1", "get_timeline", "10");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kWrongShard);
    EXPECT_EQ(remote.metrics().retries, 0u);
    EXPECT_EQ(remote.metrics().redirects, 0u);
  }
  // With a hook the bounce is a cheap fast-path: refresh the directory,
  // re-send straight to the new owner, count a redirect — not a retry.
  {
    RemoteClient remote(&rpc, {wrong_address});
    bool refreshed = false;
    remote.SetRouter([&](const std::string&) {
      return refreshed ? right_address : wrong_address;
    });
    remote.SetOnMisroute([&] {
      refreshed = true;
      return true;
    });
    auto result = remote.Invoke("user1", "get_timeline", "10");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, "served");
    EXPECT_EQ(remote.metrics().redirects, 1u);
    EXPECT_EQ(remote.metrics().retries, 0u);
  }
  rpc.Stop();
  right.Stop();
  wrong.Stop();
}

// ---------------------------------------------------------------------
// SendQueue: the partial-write bookkeeping under the coalesced writev
// flush path. A short write must never re-send a drained byte and never
// skip an undrained one, no matter where it lands relative to buffer
// boundaries.

TEST(SendQueue, ConsumeAcrossBufferBoundaries) {
  SendQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.Append("abc");
  queue.Append("");  // dropped: zero-length iovecs confuse writev math
  queue.Append("defgh");
  queue.Append("ij");
  EXPECT_EQ(queue.bytes(), 10u);

  struct iovec iov[4];
  int n = queue.FillIovecs(iov, 4);
  ASSERT_EQ(n, 3);
  EXPECT_EQ(iov[0].iov_len, 3u);
  EXPECT_EQ(memcmp(iov[0].iov_base, "abc", 3), 0);

  // Short write inside the head buffer: offset, don't retire.
  queue.Consume(1);
  n = queue.FillIovecs(iov, 4);
  ASSERT_EQ(n, 3);
  EXPECT_EQ(iov[0].iov_len, 2u);
  EXPECT_EQ(memcmp(iov[0].iov_base, "bc", 2), 0);

  // Write crossing the head boundary into the middle of the next buffer.
  queue.Consume(4);  // rest of "abc" + "de"
  n = queue.FillIovecs(iov, 4);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(iov[0].iov_len, 3u);
  EXPECT_EQ(memcmp(iov[0].iov_base, "fgh", 3), 0);
  EXPECT_EQ(queue.bytes(), 5u);

  // Write landing exactly on a boundary retires the buffer cleanly.
  queue.Consume(3);
  n = queue.FillIovecs(iov, 4);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(iov[0].iov_len, 2u);
  EXPECT_EQ(memcmp(iov[0].iov_base, "ij", 2), 0);
  queue.Consume(2);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.FillIovecs(iov, 4), 0);

  // FillIovecs honors max: more buffers than slots exposes a prefix.
  for (int i = 0; i < 6; i++) queue.Append(std::string(1, 'a' + i));
  n = queue.FillIovecs(iov, 4);
  EXPECT_EQ(n, 4);
  queue.Clear();
  EXPECT_TRUE(queue.empty());
}

TEST(SendQueue, RandomizedDrainMatchesReferenceStream) {
  // Model check: interleave random appends with random-length consumes
  // (copying what the iovecs expose first, like writev would). The
  // concatenation of everything "written" must equal the concatenation
  // of everything appended — any off-by-one in head_offset_ bookkeeping
  // shows up as duplicated or dropped bytes.
  Rng rng(20260808);
  SendQueue queue;
  std::string appended, drained;
  auto drain_some = [&] {
    struct iovec iov[8];
    int n = queue.FillIovecs(iov, 8);
    if (n == 0) return;
    size_t exposed = 0;
    for (int i = 0; i < n; i++) exposed += iov[i].iov_len;
    size_t take = 1 + rng.Uniform(exposed);
    size_t left = take;
    for (int i = 0; i < n && left > 0; i++) {
      size_t chunk = std::min(left, iov[i].iov_len);
      drained.append(static_cast<const char*>(iov[i].iov_base), chunk);
      left -= chunk;
    }
    queue.Consume(take);
  };
  for (int round = 0; round < 1000; round++) {
    if (queue.empty() || rng.Uniform(2) == 0) {
      std::string buf = rng.Bytes(1 + rng.Uniform(64));
      appended += buf;
      queue.Append(std::move(buf));
    } else {
      drain_some();
    }
  }
  while (!queue.empty()) drain_some();
  EXPECT_EQ(drained, appended);
}

// ---------------------------------------------------------------------
// Scatter-gather response encode: head + payload concatenated must be
// byte-identical to the contiguous EncodeResponse, or the two flush
// paths would disagree on the wire format.

TEST(Frame, ResponsePartsMatchContiguousEncode) {
  struct Case {
    Result<std::string> result;
  } cases[] = {
      {Result<std::string>(std::string("value bytes"))},
      {Result<std::string>(std::string())},  // empty payload
      {Result<std::string>(std::string(100 * 1024, '\xab'))},
      {Result<std::string>(Status::NotFound("no such service"))},
      {Result<std::string>(Status::Timeout("deadline expired before dispatch"))},
  };
  uint64_t rpc_id = 91;
  for (auto& c : cases) {
    std::string contiguous = EncodeResponse(rpc_id, c.result);
    Result<std::string> moved = c.result;  // EncodeResponseParts consumes
    ResponseParts parts = EncodeResponseParts(rpc_id, std::move(moved));
    EXPECT_EQ(parts.head + parts.payload, contiguous) << "rpc_id " << rpc_id;

    // And it still decodes: CRC over preamble+payload is intact.
    std::string wire = parts.head + parts.payload;
    size_t consumed = 0;
    std::string_view body;
    ASSERT_EQ(TryDecodeFrame(wire, &consumed, &body), DecodeResult::kOk);
    Message message;
    ASSERT_TRUE(DecodeMessage(body, &message));
    ASSERT_EQ(message.kind, MessageKind::kResponse);
    EXPECT_EQ(message.response.rpc_id, rpc_id);
    if (c.result.ok()) {
      EXPECT_EQ(message.response.code, StatusCode::kOk);
      EXPECT_EQ(message.response.body, *c.result);
    } else {
      EXPECT_EQ(message.response.code, c.result.status().code());
      EXPECT_EQ(message.response.body, c.result.status().message());
    }
    rpc_id++;
  }
}

// ---------------------------------------------------------------------
// Partial writes: a tiny SO_SNDBUF (the kernel clamps to its floor, a
// few KB) against responses far larger forces writev to return short
// over and over, at arbitrary offsets relative to the head/payload
// iovec boundaries. Every echo must still come back byte-identical.

TEST(Rpc, PartialWritevAcrossIovecBoundaries) {
  RpcServerOptions options;
  options.sndbuf_bytes = 1;  // clamped up to the kernel minimum
  RpcServer server(options);
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  // Pipeline several large, distinct payloads on ONE connection so the
  // coalesced flush queues many head+payload iovec pairs at once.
  constexpr int kCalls = 8;
  constexpr size_t kPayload = 192 * 1024;
  RpcClient client;
  std::vector<std::promise<Result<std::string>>> done(kCalls);
  std::vector<std::string> payloads(kCalls);
  for (int i = 0; i < kCalls; i++) {
    payloads[i].reserve(kPayload);
    for (size_t b = 0; b < kPayload; b++) {
      payloads[i].push_back(static_cast<char>('A' + i + (b % 23)));
    }
    client.Call(address, "echo", payloads[i], 10'000'000,
                [&done, i](Result<std::string> result) {
                  done[i].set_value(std::move(result));
                });
  }
  for (int i = 0; i < kCalls; i++) {
    auto result = done[i].get_future().get();
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
    EXPECT_EQ(*result, payloads[i]) << "echo " << i << " corrupted";
  }
  // The whole point of the tiny sndbuf: the flush path actually hit
  // EAGAIN / short writes, so it took far more writev calls than
  // responses (each ~196KB response drains through a few-KB buffer).
  EXPECT_GT(server.stats().syscalls.load(),
            static_cast<uint64_t>(2 * kCalls));
  client.Stop();
  server.Stop();
  EXPECT_EQ(server.stats().responses.load(), static_cast<uint64_t>(kCalls));
}

// ---------------------------------------------------------------------
// Multi-reactor server under concurrent clients, frame fuzz, and
// reconnect churn: well-formed requests on one connection must never be
// corrupted or lost because a *different* connection — possibly on a
// different reactor — fed the server garbage or hung up mid-frame.

TEST(Rpc, MultiReactorFuzzAndReconnectChurn) {
  RpcServerOptions options;
  options.net_threads = 4;
  RpcServer server(options);
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.reactors(), 4);
  std::string address = "127.0.0.1:" + std::to_string(server.port());
  uint16_t port = server.port();

  auto dial_raw = [port]() -> int {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  std::atomic<int> failures{0};
  std::atomic<bool> stop_fuzz{false};
  // Fuzz thread: corrupt frames, pure garbage, and torn prefixes on
  // fresh raw connections, racing the real clients below.
  std::thread fuzzer([&] {
    Rng rng(777);
    RequestFrame request;
    request.rpc_id = 1;
    request.service = "echo";
    while (!stop_fuzz.load(std::memory_order_relaxed)) {
      int fd = dial_raw();
      if (fd < 0) continue;
      std::string payload = rng.Bytes(rng.Uniform(256));
      request.payload = payload;  // RequestFrame holds a view
      std::string wire = EncodeRequest(request);
      uint64_t shape = rng.Uniform(3);
      if (shape == 0 && !wire.empty()) {
        wire[rng.Uniform(wire.size())] ^= 0x20;  // corrupt: CRC reject
      } else if (shape == 1) {
        wire = rng.Bytes(16 + rng.Uniform(64));  // garbage header
      } else {
        wire.resize(rng.Uniform(wire.size()));  // torn frame, then hangup
      }
      (void)!::write(fd, wire.data(), wire.size());
      ::close(fd);  // churn: the server sees EOF/RST mid-stream
    }
  });

  constexpr int kThreads = 8, kBatches = 5, kCallsPerBatch = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Reconnect churn: a fresh client (fresh connection, landing on
      // whichever reactor the kernel hashes it to) every batch.
      for (int batch = 0; batch < kBatches; batch++) {
        RpcClient client;
        for (int i = 0; i < kCallsPerBatch; i++) {
          std::string msg = "t" + std::to_string(t) + "-b" +
                            std::to_string(batch) + "-" + std::to_string(i) +
                            "-" + std::string(1 + (i * 37) % 512, 'x');
          auto result = client.CallSync(address, "echo", msg, 10'000'000);
          if (!result.ok() || *result != msg) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        client.Stop();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop_fuzz.store(true);
  fuzzer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().responses.load(),
            static_cast<uint64_t>(kThreads * kBatches * kCallsPerBatch));
  // The fuzzer actually exercised the reject paths.
  EXPECT_GT(server.frame_stats().rejects(), 0u);
  // Churn accounting: every accepted connection eventually closed.
  server.Stop();
  EXPECT_EQ(server.stats().connections_accepted.load(),
            server.stats().connections_closed.load());
}

// ---------------------------------------------------------------------
// Backpressure: a peer that pipelines requests but never reads responses
// must not grow the server's send queue without bound — once the
// per-connection backlog cap is crossed, new requests are shed via the
// deadline path and the gauge stays bounded.

TEST(Rpc, BacklogCapShedsWhenPeerStopsReading) {
  constexpr size_t kCap = 64 * 1024;
  constexpr size_t kResponse = 32 * 1024;
  RpcServerOptions options;
  options.max_conn_backlog_bytes = kCap;
  options.sndbuf_bytes = 1;  // kernel floor: the socket absorbs little
  RpcServer server(options);
  server.Handle("blob", [](RpcServer::Request, RpcServer::Responder respond) {
    respond(std::string(kResponse, 'z'));
  });
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Pipeline far more than the cap's worth of work (no deadline, so the
  // only shed reason is the backlog), and never read a byte back.
  RequestFrame request;
  request.service = "blob";
  std::string burst;
  constexpr int kRequests = 64;  // 64 * 32KB = 2MB >> 64KB cap
  for (int i = 0; i < kRequests; i++) {
    request.rpc_id = static_cast<uint64_t>(i + 1);
    burst += EncodeRequest(request);
  }
  size_t written = 0;
  while (written < burst.size()) {
    ssize_t n = ::write(fd, burst.data() + written, burst.size() - written);
    ASSERT_GT(n, 0);
    written += static_cast<size_t>(n);
  }

  // The server sheds once the queue crosses the cap...
  for (int i = 0; i < 5000 && server.stats().backlog_shed.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(server.stats().backlog_shed.load(), 0u);
  // ...and the gauge never runs away: at most the cap plus one response
  // that was in flight when the cap was crossed, plus the tiny shed
  // replies themselves.
  EXPECT_LT(server.stats().backlog_bytes.load(), kCap + kResponse + 16 * 1024);

  // Hanging up reclaims the whole backlog.
  ::close(fd);
  for (int i = 0; i < 5000 && server.stats().backlog_bytes.load() != 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().backlog_bytes.load(), 0u);
  server.Stop();
}

// ---------------------------------------------------------------------
// io_uring backend: same contract as epoll through the Poller
// interface. Skips (cleanly, not silently failing) where the sandbox
// blocks io_uring_setup.

TEST(Rpc, UringBackendEchoOrSkip) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
  }
  RpcServerOptions options;
  options.backend = NetBackend::kUring;
  options.net_threads = 2;
  RpcServer server(options);
  server.Handle("echo", [](RpcServer::Request request,
                           RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_STREQ(server.backend_name(), "uring");
  std::string address = "127.0.0.1:" + std::to_string(server.port());

  constexpr int kThreads = 4, kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      RpcClient client;  // fresh connection per thread
      for (int i = 0; i < kCallsPerThread; i++) {
        std::string msg = "u" + std::to_string(t) + "-" + std::to_string(i);
        auto result = client.CallSync(address, "echo", msg, 5'000'000);
        if (!result.ok() || *result != msg) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      client.Stop();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().responses.load(),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  server.Stop();
}

// ---------------------------------------------------------------------
// Multi-process loopback smoke test: spawn the real server binary, run
// a small ReTwis slice over TCP, shut it down cleanly.

std::string ServerBinaryPath() {
  if (const char* env = std::getenv("LO_SERVER_BIN")) return env;
#ifdef LO_SERVER_BIN_DEFAULT
  return LO_SERVER_BIN_DEFAULT;
#else
  return "";
#endif
}

/// Kills the spawned server on any early test exit (a failed ASSERT
/// would otherwise leak the child; its inherited stderr then wedges
/// ctest's output pipe forever).
struct SpawnGuard {
  pid_t pid = -1;
  ~SpawnGuard() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }
  /// Hands ownership back for a normal waitpid.
  pid_t Release() {
    pid_t p = pid;
    pid = -1;
    return p;
  }
};

TEST(MultiProcess, LoopbackRetwisSlice) {
  std::string binary = ServerBinaryPath();
  ASSERT_FALSE(binary.empty()) << "set LO_SERVER_BIN";

  // Spawn the server with a pipe on its stdout to parse "READY port=N".
  int out_pipe[2];
  ASSERT_EQ(pipe(out_pipe), 0);
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, out_pipe[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, out_pipe[0]);
  posix_spawn_file_actions_addclose(&actions, out_pipe[1]);
  std::string arg_port = "--port=0";
  std::string arg_lanes = "--lanes=4";
  std::string arg_users = "--seed-users=100";
  char* argv[] = {binary.data(), arg_port.data(), arg_lanes.data(),
                  arg_users.data(), nullptr};
  pid_t pid = -1;
  ASSERT_EQ(posix_spawn(&pid, binary.c_str(), &actions, nullptr, argv, environ),
            0)
      << "spawning " << binary;
  posix_spawn_file_actions_destroy(&actions);
  ::close(out_pipe[1]);
  SpawnGuard guard{pid};

  // Read the READY line.
  std::string ready;
  char c;
  while (ready.find('\n') == std::string::npos &&
         ::read(out_pipe[0], &c, 1) == 1) {
    ready.push_back(c);
  }
  ::close(out_pipe[0]);
  ASSERT_EQ(ready.rfind("READY port=", 0), 0u) << "got: " << ready;
  uint16_t port = static_cast<uint16_t>(std::stoi(ready.substr(11)));
  ASSERT_GT(port, 0);

  {
    RpcClient rpc;
    RemoteClient remote(&rpc, {"127.0.0.1:" + std::to_string(port)});
    ASSERT_TRUE(remote.Ping().ok());

    // Fresh object end-to-end: create, init, post, read the timeline.
    ASSERT_TRUE(remote.Create("zz_test", "user").ok());
    ASSERT_TRUE(remote.Invoke("zz_test", "init", "tester").ok());
    ASSERT_TRUE(remote.Invoke("zz_test", "create_post", "hello world").ok());
    auto timeline = remote.Invoke("zz_test", "get_timeline", "10");
    ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
    auto posts = retwis::DecodeTimeline(*timeline);
    ASSERT_TRUE(posts.ok());
    ASSERT_EQ(posts->size(), 1u);
    EXPECT_EQ((*posts)[0].message, "hello world");
    EXPECT_EQ((*posts)[0].author, "tester");

    // Seeded object: the --seed-users graph pre-loaded timelines.
    auto seeded = remote.Invoke("user/1", "get_timeline", "10");
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    auto seeded_posts = retwis::DecodeTimeline(*seeded);
    ASSERT_TRUE(seeded_posts.ok());
    EXPECT_FALSE(seeded_posts->empty());

    remote.Shutdown();
    rpc.Stop();
  }

  int wstatus = 0;
  pid = guard.Release();
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "server did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

}  // namespace
}  // namespace lo::net
