// Tests for the observability subsystem: metrics registry semantics,
// tracer sampling + ring buffer, Chrome-trace export round-trip, the
// critical-path breakdown's exact-partition property, span nesting
// across a real RPC hop in the aggregated deployment, and the
// determinism regression (same seed => byte-identical dumps).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "retwis/retwis.h"

namespace lo::obs {
namespace {

using sim::Detach;
using sim::Task;

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramRegistration) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests", 7);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(reg.GetCounter("requests", 7), c);  // same instrument
  reg.GetGauge("queue_depth", 7)->Set(3.5);
  Histogram* h = reg.GetHistogram("latency_us", 7);
  h->Record(100);
  h->Record(300);

  auto snapshot = reg.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Sorted by (name, node).
  EXPECT_EQ(snapshot[0].name, "latency_us");
  EXPECT_EQ(snapshot[0].kind, MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(snapshot[0].count, 2u);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 200.0);  // mean
  EXPECT_GT(snapshot[0].max, 0);
  EXPECT_EQ(snapshot[1].name, "queue_depth");
  EXPECT_DOUBLE_EQ(snapshot[1].value, 3.5);
  EXPECT_EQ(snapshot[2].name, "requests");
  EXPECT_EQ(snapshot[2].node, 7u);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 5.0);
}

TEST(MetricsRegistryTest, ExternalAndCallbackAndUnregister) {
  MetricsRegistry reg;
  uint64_t live = 0;
  reg.RegisterExternal("ext.counter", 1, &live);
  reg.RegisterCallback("cb.value", 2, [] { return 42.0; });
  live = 9;  // hot path stays a bare mutation of the owner's field
  auto snapshot = reg.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 42.0);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 9.0);

  reg.UnregisterNode(1);
  EXPECT_EQ(reg.Snapshot().size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotJsonIsValidJson) {
  MetricsRegistry reg;
  reg.GetCounter("a.b", 1)->Inc(3);
  reg.GetGauge("c\"quoted\"", 2)->Set(1.5);
  reg.GetHistogram("lat", 3)->Record(50);
  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kArray);
  EXPECT_EQ(metrics->array.size(), 3u);
}

// --- Tracer -------------------------------------------------------------

TEST(TracerTest, SamplingRate) {
  Tracer tracer(TracerOptions{.sample_every = 3});
  int sampled = 0;
  for (int i = 0; i < 9; i++) {
    if (tracer.StartTrace().sampled()) sampled++;
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(tracer.traces_started(), 9u);
  EXPECT_EQ(tracer.traces_sampled(), 3u);

  Tracer off(TracerOptions{.sample_every = 0});
  for (int i = 0; i < 5; i++) EXPECT_FALSE(off.StartTrace().sampled());
  EXPECT_EQ(off.traces_sampled(), 0u);
}

TEST(TracerTest, UnsampledContextPropagatesAsNoOp) {
  Tracer tracer(TracerOptions{.sample_every = 2});
  TraceContext sampled = tracer.StartTrace();   // 1st: sampled
  TraceContext unsampled = tracer.StartTrace(); // 2nd: not
  ASSERT_TRUE(sampled.sampled());
  ASSERT_FALSE(unsampled.sampled());
  EXPECT_FALSE(tracer.Child(unsampled).sampled());
  tracer.Record(unsampled, "ghost", 0, 0, 10);
  tracer.RecordChild(unsampled, "ghost2", 0, 0, 10);
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_TRUE(Tracing(&tracer, sampled));
  EXPECT_FALSE(Tracing(&tracer, unsampled));
  EXPECT_FALSE(Tracing(nullptr, sampled));
}

TEST(TracerTest, ParentChildLinkage) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace();
  TraceContext child = tracer.Child(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  tracer.Record(child, "inner", 3, 10, 20);
  tracer.Record(root, "outer", 1, 0, 30);
  auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_span_id, root.span_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span_id, 0u);
}

TEST(TracerTest, RingBufferOverwritesOldest) {
  Tracer tracer(TracerOptions{.sample_every = 1, .ring_capacity = 4});
  TraceContext root = tracer.StartTrace();
  for (int i = 0; i < 10; i++) {
    tracer.RecordChild(root, "span" + std::to_string(i), 0, i, i + 1);
  }
  EXPECT_EQ(tracer.spans_recorded(), 10u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first; the oldest six were overwritten.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
}

// --- export / breakdown -------------------------------------------------

TEST(ExportTest, ChromeTraceRoundTrip) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace();
  TraceContext rpc = tracer.Child(root);
  tracer.Record(rpc, "rpc.lambda.invoke", 10, 5000, 125000);
  tracer.Record(root, "invoke", 100, 0, 150000);

  std::string json = ExportChromeTrace(tracer.Spans());
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(*&events->array[0].Find("ph")->string_value, "X");

  auto spans = SpansFromChromeTrace(*doc);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0].name, "rpc.lambda.invoke");
  EXPECT_EQ((*spans)[0].node, 10u);
  EXPECT_EQ((*spans)[0].start_ns, 5000);
  EXPECT_EQ((*spans)[0].end_ns, 125000);
  EXPECT_EQ((*spans)[0].trace_id, root.trace_id);
  EXPECT_EQ((*spans)[0].span_id, rpc.span_id);
  EXPECT_EQ((*spans)[0].parent_span_id, root.span_id);
  EXPECT_EQ((*spans)[1].name, "invoke");
  EXPECT_EQ((*spans)[1].parent_span_id, 0u);
}

TEST(ExportTest, SpansFromChromeTraceRejectsGarbage) {
  auto not_trace = ParseJson("{\"foo\":1}");
  ASSERT_TRUE(not_trace.ok());
  EXPECT_FALSE(SpansFromChromeTrace(*not_trace).ok());
  EXPECT_FALSE(ParseJson("{\"unterminated\":").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

SpanRecord MakeSpan(uint64_t trace, uint64_t id, uint64_t parent,
                    const char* name, int64_t start_us, int64_t end_us) {
  SpanRecord span;
  span.trace_id = trace;
  span.span_id = id;
  span.parent_span_id = parent;
  span.name = name;
  span.start_ns = start_us * 1000;
  span.end_ns = end_us * 1000;
  return span;
}

TEST(BreakdownTest, PhaseSelfTimesPartitionRootExactly) {
  // invoke [0,1000] -> rpc [100,900] -> srv [200,800] -> {dispatch
  // [200,215], vm_exec [215,700]}; plus two *overlapping* parallel
  // replication hops under srv: [700,780] and [740,800].
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, "invoke", 0, 1000));
  spans.push_back(MakeSpan(1, 2, 1, "rpc.lambda.invoke", 100, 900));
  spans.push_back(MakeSpan(1, 3, 2, "srv.lambda.invoke", 200, 800));
  spans.push_back(MakeSpan(1, 4, 3, "dispatch", 200, 215));
  spans.push_back(MakeSpan(1, 5, 3, "vm_exec", 215, 700));
  spans.push_back(MakeSpan(1, 6, 3, "rpc.repl.apply", 700, 780));
  spans.push_back(MakeSpan(1, 7, 3, "rpc.repl.apply", 740, 800));

  TraceBreakdown breakdown = ComputeBreakdown(spans);
  EXPECT_EQ(breakdown.traces, 1u);
  EXPECT_EQ(breakdown.dropped_traces, 0u);
  EXPECT_EQ(breakdown.orphan_spans, 0u);
  auto phase_sum = [&](Phase p) {
    return breakdown.phase_us[static_cast<size_t>(p)].sum();
  };
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kDispatch), 15.0);
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kVmExec), 485.0);
  // Overlapping hops counted once: [700,800] = 100us, not 140.
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kReplication), 100.0);
  // rpc self = wire time [100,200)+[800,900); srv residue counts as net.
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kNetwork), 200.0);
  // invoke self = client-side residue [0,100)+[900,1000].
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kOther), 200.0);
  double total = 0;
  for (size_t i = 0; i < static_cast<size_t>(Phase::kNumPhases); i++) {
    total += breakdown.phase_us[i].sum();
  }
  EXPECT_DOUBLE_EQ(total, 1000.0);  // exact partition of the root
  EXPECT_EQ(breakdown.total_us.Max(), 1000);
}

TEST(BreakdownTest, AsyncChildOutlivingParentIsClipped) {
  // The child extends 500us past its parent: only the overlap counts,
  // so the partition still sums to the root duration.
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, "invoke", 0, 100));
  spans.push_back(MakeSpan(1, 2, 1, "rpc.repl.apply", 50, 600));
  TraceBreakdown breakdown = ComputeBreakdown(spans);
  auto phase_sum = [&](Phase p) {
    return breakdown.phase_us[static_cast<size_t>(p)].sum();
  };
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kReplication), 50.0);
  EXPECT_DOUBLE_EQ(phase_sum(Phase::kOther), 50.0);
}

TEST(BreakdownTest, MissingRootDropsTrace) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 2, 1, "dispatch", 0, 10));  // parent never seen
  TraceBreakdown breakdown = ComputeBreakdown(spans);
  EXPECT_EQ(breakdown.traces, 0u);
  EXPECT_EQ(breakdown.dropped_traces, 1u);
}

// --- integration: spans across an RPC hop, migrated metrics -------------

class ObsClusterTest : public ::testing::Test {
 public:
  ObsClusterTest() {
    EXPECT_TRUE(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
    cluster::DeploymentOptions options;
    options.metrics_registry = &registry_;
    options.tracer = &tracer_;
    deployment_ = std::make_unique<cluster::AggregatedDeployment>(
        sim_, &types_, options);
    deployment_->WaitUntilReady();
    client_ = &deployment_->NewClient();
  }

  Result<std::string> Invoke(const std::string& oid, const std::string& method,
                             const std::string& arg = "") {
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](cluster::Client* client, std::string oid, std::string method,
              std::string arg, Result<std::string>* out,
              bool* done) -> Task<void> {
      *out = co_await client->Invoke(std::move(oid), std::move(method),
                                     std::move(arg));
      *done = true;
    }(client_, oid, method, arg, &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  Result<std::string> Create(const std::string& oid) {
    Result<std::string> out = Status::Unavailable("not run");
    bool done = false;
    Detach([](cluster::Client* client, std::string oid,
              Result<std::string>* out, bool* done) -> Task<void> {
      *out = co_await client->Create(std::move(oid), "user");
      *done = true;
    }(client_, oid, &out, &done));
    while (!done) EXPECT_TRUE(sim_.Step());
    return out;
  }

  sim::Simulator sim_{23};
  runtime::TypeRegistry types_;
  MetricsRegistry registry_;
  Tracer tracer_;
  std::unique_ptr<cluster::AggregatedDeployment> deployment_;
  cluster::Client* client_ = nullptr;
};

TEST_F(ObsClusterTest, SpanNestingAcrossRpcHop) {
  ASSERT_TRUE(Create("user/alice").ok());
  ASSERT_TRUE(Invoke("user/alice", "init", "alice").ok());

  // Find the most recent complete trace: root "invoke" span minted by
  // the client, an "rpc.lambda.invoke2" child (client side of the
  // token-wrapped hop), a "srv.lambda.invoke2" child of that (server
  // side), and under it the node-internal dispatch/vm_exec spans.
  auto spans = tracer_.Spans();
  ASSERT_FALSE(spans.empty());
  const SpanRecord* root = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.name == "invoke" && span.parent_span_id == 0) root = &span;
  }
  ASSERT_NE(root, nullptr);
  auto find_child = [&](uint64_t parent, const std::string& name)
      -> const SpanRecord* {
    for (const SpanRecord& span : spans) {
      if (span.trace_id == root->trace_id && span.parent_span_id == parent &&
          span.name == name) {
        return &span;
      }
    }
    return nullptr;
  };
  const SpanRecord* rpc = find_child(root->span_id, "rpc.lambda.invoke2");
  ASSERT_NE(rpc, nullptr);
  const SpanRecord* srv = find_child(rpc->span_id, "srv.lambda.invoke2");
  ASSERT_NE(srv, nullptr);
  // Client and server sides of the hop ran on different nodes.
  EXPECT_NE(rpc->node, srv->node);
  EXPECT_GE(rpc->duration_ns(), srv->duration_ns());
  const SpanRecord* dispatch = find_child(srv->span_id, "dispatch");
  ASSERT_NE(dispatch, nullptr);
  const SpanRecord* vm = find_child(srv->span_id, "vm_exec");
  ASSERT_NE(vm, nullptr);
  EXPECT_GE(vm->start_ns, dispatch->end_ns);  // demux precedes execution
  EXPECT_GE(vm->start_ns, srv->start_ns);
  EXPECT_LE(vm->end_ns, srv->end_ns);
  // A write invocation also produced a commit with a WAL sync on the
  // primary, all within this trace.
  bool saw_commit = false, saw_wal = false;
  for (const SpanRecord& span : spans) {
    if (span.trace_id != root->trace_id) continue;
    saw_commit |= span.name == "commit";
    saw_wal |= span.name == "wal_sync";
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_wal);
}

TEST_F(ObsClusterTest, MigratedMetricsKeepAccessorsAndRegistryInSync) {
  ASSERT_TRUE(Create("user/bob").ok());
  ASSERT_TRUE(Invoke("user/bob", "init", "bob").ok());

  uint64_t invokes = 0;
  for (int i = 0; i < deployment_->num_nodes(); i++) {
    invokes += deployment_->node(i).metrics().invokes_served;
  }
  EXPECT_GE(invokes, 1u);  // ad-hoc struct accessor still live

  double registry_invokes = 0;
  bool saw_rpc_calls = false;
  for (const auto& sample : registry_.Snapshot()) {
    if (sample.name == "node.invokes_served") registry_invokes += sample.value;
    if (sample.name == "rpc.calls_started") saw_rpc_calls = true;
  }
  EXPECT_DOUBLE_EQ(registry_invokes, static_cast<double>(invokes));
  EXPECT_TRUE(saw_rpc_calls);
}

// --- determinism regression ---------------------------------------------

// Runs a small seeded workload on a fresh deployment and returns the
// (metrics json, trace json) dumps.
std::pair<std::string, std::string> RunSeededWorkload(uint64_t seed) {
  sim::Simulator sim(seed);
  runtime::TypeRegistry types;
  EXPECT_TRUE(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  MetricsRegistry registry;
  Tracer tracer(TracerOptions{.sample_every = 2});
  cluster::DeploymentOptions options;
  options.metrics_registry = &registry;
  options.tracer = &tracer;
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  cluster::Client* client = &deployment.NewClient();

  bool done = false;
  Detach([](cluster::Client* client, bool* done) -> Task<void> {
    (void)co_await client->Create("user/alice", "user");
    (void)co_await client->Create("user/bob", "user");
    (void)co_await client->Invoke("user/alice", "init", "alice");
    (void)co_await client->Invoke("user/bob", "init", "bob");
    (void)co_await client->Invoke("user/alice", "follow", "user/bob");
    for (int i = 0; i < 8; i++) {
      (void)co_await client->Invoke("user/alice", "create_post",
                                    "post " + std::to_string(i));
      (void)co_await client->Invoke("user/bob", "get_timeline",
                                    retwis::EncodeU64(10));
    }
    *done = true;
  }(client, &done));
  while (!done) EXPECT_TRUE(sim.Step());
  return {registry.SnapshotJson(), ExportChromeTrace(tracer.Spans())};
}

TEST(ObsDeterminismTest, SameSeedProducesIdenticalDumps) {
  auto first = RunSeededWorkload(77);
  auto second = RunSeededWorkload(77);
  EXPECT_EQ(first.first, second.first);    // metrics snapshot
  EXPECT_EQ(first.second, second.second);  // sampled trace
  // And the dump is non-trivial: spans were actually recorded.
  auto doc = ParseJson(first.second);
  ASSERT_TRUE(doc.ok());
  EXPECT_GT(doc->Find("traceEvents")->array.size(), 10u);
}

}  // namespace
}  // namespace lo::obs
