// Replication tests: primary-backup batch shipping (ordering, epochs,
// reordered delivery, unreachable backups), chain replication latency
// ordering, and the replicated log used by the baseline's load balancer.
#include <gtest/gtest.h>

#include <memory>

#include "replication/replicator.h"
#include "storage/env.h"

namespace lo::replication {
namespace {

using sim::Detach;
using sim::Task;

struct Node {
  Node(sim::Network& net, sim::NodeId id, Mode mode)
      : rpc(net, id), db(std::move(*storage::DB::Open(MakeOptions(), Name(id)))),
        replicator(&rpc, db.get(), mode) {}

  storage::Options MakeOptions() {
    storage::Options options;
    options.env = &env;
    return options;
  }
  static std::string Name(sim::NodeId id) { return "/db" + std::to_string(id); }

  storage::MemEnv env;
  sim::RpcEndpoint rpc;
  std::unique_ptr<storage::DB> db;
  Replicator replicator;
};

class ReplicationTest : public ::testing::TestWithParam<Mode> {
 public:
  ReplicationTest() {
    for (sim::NodeId id = 1; id <= 3; id++) {
      nodes_.push_back(std::make_unique<Node>(net_, id, GetParam()));
    }
    // Node 1 primary, 2 and 3 backups (chain order 1 -> 2 -> 3).
    nodes_[0]->replicator.Configure(0, 1, true, {2, 3});
    nodes_[1]->replicator.Configure(0, 1, false, GetParam() == Mode::kChain
                                                  ? std::vector<sim::NodeId>{3}
                                                  : std::vector<sim::NodeId>{});
    nodes_[2]->replicator.Configure(0, 1, false, {});
  }

  Status Replicate(const std::string& key, const std::string& value) {
    Status out = Status::Unavailable("not run");
    Detach([](Node* primary, std::string key, std::string value,
              Status* out) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put(key, value);
      *out = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
    }(nodes_[0].get(), key, value, &out));
    sim_.Run();
    return out;
  }

  sim::Simulator sim_{3};
  sim::Network net_{sim_, sim::NetworkConfig{}};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_P(ReplicationTest, BatchReachesAllReplicas) {
  ASSERT_TRUE(Replicate("k", "v").ok());
  for (auto& node : nodes_) {
    auto got = node->db->Get({}, "k");
    ASSERT_TRUE(got.ok()) << "node " << node->rpc.node();
    EXPECT_EQ(*got, "v");
  }
}

TEST_P(ReplicationTest, ManyBatchesApplyInOrderEverywhere) {
  constexpr int kBatches = 60;
  int done = 0;
  for (int i = 0; i < kBatches; i++) {
    Detach([](Node* primary, int i, int* done) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put("seq", std::to_string(i));
      batch.Put("k" + std::to_string(i), "v");
      auto s = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
      EXPECT_TRUE(s.ok()) << s.ToString();
      (*done)++;
    }(nodes_[0].get(), i, &done));
  }
  sim_.Run();
  ASSERT_EQ(done, kBatches);
  for (auto& node : nodes_) {
    // All keys present; "seq" converged to the last committed batch.
    for (int i = 0; i < kBatches; i++) {
      EXPECT_TRUE(node->db->Get({}, "k" + std::to_string(i)).ok());
    }
    EXPECT_EQ(node->replicator.applied_seq(0), static_cast<uint64_t>(kBatches));
  }
  // Jitter makes some deliveries arrive out of order; the reorder buffer
  // must have handled them (this is environment-dependent, so only check
  // the invariant, not the count).
  EXPECT_EQ(*nodes_[1]->db->Get({}, "seq"), *nodes_[0]->db->Get({}, "seq"));
}

TEST_P(ReplicationTest, ReplicateOnBackupRejected) {
  Status out = Status::OK();
  Detach([](Node* backup, Status* out) -> Task<void> {
    storage::WriteBatch batch;
    batch.Put("x", "y");
    *out = co_await backup->replicator.ReplicateAndApply(0, std::move(batch));
  }(nodes_[1].get(), &out));
  sim_.Run();
  EXPECT_EQ(out.code(), StatusCode::kNotPrimary);
}

TEST_P(ReplicationTest, UnreachableBackupFailsTheCommit) {
  net_.SetNodeUp(3, false);
  Status s = Replicate("k", "v");
  ASSERT_FALSE(s.ok());
  // Epoch bump + reconfigure without node 3 lets writes proceed.
  nodes_[0]->replicator.Configure(0, 2, true, {2});
  nodes_[1]->replicator.Configure(0, 2, false, {});
  EXPECT_TRUE(Replicate("k2", "v2").ok());
  EXPECT_TRUE(nodes_[1]->db->Get({}, "k2").ok());
}

TEST_P(ReplicationTest, StaleEpochShipmentsRejected) {
  ASSERT_TRUE(Replicate("a", "1").ok());
  // Backups move to epoch 5; the primary still at epoch 1 must be refused.
  nodes_[1]->replicator.Configure(0, 5, false, GetParam() == Mode::kChain
                                                ? std::vector<sim::NodeId>{3}
                                                : std::vector<sim::NodeId>{});
  nodes_[2]->replicator.Configure(0, 5, false, {});
  Status s = Replicate("b", "2");
  EXPECT_FALSE(s.ok());
  EXPECT_GE(nodes_[1]->replicator.metrics().stale_epoch_rejections, 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplicationTest,
                         ::testing::Values(Mode::kPrimaryBackup, Mode::kChain),
                         [](const auto& info) {
                           return info.param == Mode::kPrimaryBackup ? "PrimaryBackup"
                                                                     : "Chain";
                         });

TEST(ReplicationLatency, ChainIsSlowerThanPrimaryBackup) {
  // Same topology, both modes: chain must take ~2 sequential hops where
  // primary-backup takes 1 parallel round-trip (the paper's reason for
  // choosing primary-backup).
  auto measure = [](Mode mode) {
    sim::Simulator sim(7);
    sim::Network net(sim, sim::NetworkConfig{.jitter_mean = 0});
    std::vector<std::unique_ptr<Node>> nodes;
    for (sim::NodeId id = 1; id <= 3; id++) {
      nodes.push_back(std::make_unique<Node>(net, id, mode));
    }
    nodes[0]->replicator.Configure(0, 1, true, mode == Mode::kChain
                                                ? std::vector<sim::NodeId>{2}
                                                : std::vector<sim::NodeId>{2, 3});
    nodes[1]->replicator.Configure(0, 1, false, mode == Mode::kChain
                                                 ? std::vector<sim::NodeId>{3}
                                                 : std::vector<sim::NodeId>{});
    nodes[2]->replicator.Configure(0, 1, false, {});
    sim::Time finished = 0;
    Detach([](Node* primary, sim::Simulator* sim, sim::Time* finished) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put("k", "v");
      auto s = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
      EXPECT_TRUE(s.ok());
      *finished = sim->Now();
    }(nodes[0].get(), &sim, &finished));
    sim.Run();
    return finished;
  };
  sim::Time pb = measure(Mode::kPrimaryBackup);
  sim::Time chain = measure(Mode::kChain);
  EXPECT_GT(chain, pb + sim::Micros(50)) << "chain should pay an extra hop";
}

TEST(ReplicationFaults, OneWayPartitionFailsCommitThenPromotionRecovers) {
  sim::Simulator sim(13);
  sim::Network net(sim, sim::NetworkConfig{});
  std::vector<std::unique_ptr<Node>> nodes;
  for (sim::NodeId id = 1; id <= 3; id++) {
    nodes.push_back(std::make_unique<Node>(net, id, Mode::kPrimaryBackup));
  }
  nodes[0]->replicator.Configure(0, 1, true, {2, 3});
  nodes[1]->replicator.Configure(0, 1, false, {});
  nodes[2]->replicator.Configure(0, 1, false, {});

  auto replicate = [&](Node* node, std::string key, std::string value) {
    Status out = Status::Unavailable("not run");
    Detach([](Node* n, std::string k, std::string v, Status* out) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put(k, v);
      *out = co_await n->replicator.ReplicateAndApply(0, std::move(batch));
    }(node, std::move(key), std::move(value), &out));
    sim.Run();
    return out;
  };

  ASSERT_TRUE(replicate(nodes[0].get(), "a", "1").ok());

  // Gray failure: the primary's shipments to backup 3 vanish, but 3 is
  // alive and can still talk to everyone else. The commit must fail
  // loudly (ack timeout), never succeed with a silently stale backup.
  net.PartitionOneWay(1, 3);
  Status s = replicate(nodes[0].get(), "b", "2");
  ASSERT_FALSE(s.ok());
  EXPECT_GE(nodes[0]->replicator.metrics().failed_peer_acks, 1u);
  EXPECT_TRUE(nodes[2]->db->Get({}, "b").status().IsNotFound());

  // Failover: epoch bump promotes backup 2 (it holds the full acked
  // prefix); the partitioned node 3 is evicted from the set — without
  // anti-entropy it cannot rejoin mid-epoch, having missed a shipment.
  nodes[1]->replicator.Configure(0, 2, true, {});
  EXPECT_EQ(nodes[1]->replicator.metrics().promotions, 1u);
  ASSERT_TRUE(replicate(nodes[1].get(), "c", "3").ok());
  EXPECT_EQ(*nodes[1]->db->Get({}, "c"), "3");

  // The deposed primary is fenced: its epoch-1 shipments are refused.
  s = replicate(nodes[0].get(), "d", "4");
  EXPECT_FALSE(s.ok());
  EXPECT_GE(nodes[1]->replicator.metrics().stale_epoch_rejections, 1u);
  EXPECT_TRUE(nodes[1]->db->Get({}, "d").status().IsNotFound());
}

TEST(ReplicatedLogTest, AppendReplicatesToFollowers) {
  sim::Simulator sim(9);
  sim::Network net(sim, sim::NetworkConfig{});
  storage::MemEnv env;
  auto make_db = [&](const std::string& name) {
    storage::Options options;
    options.env = &env;
    return std::move(*storage::DB::Open(options, name));
  };
  sim::RpcEndpoint leader_rpc(net, 1), f1_rpc(net, 2), f2_rpc(net, 3);
  auto leader_db = make_db("/l");
  auto f1_db = make_db("/f1");
  auto f2_db = make_db("/f2");
  ReplicatedLog leader(&leader_rpc, leader_db.get());
  ReplicatedLog follower1(&f1_rpc, f1_db.get());
  ReplicatedLog follower2(&f2_rpc, f2_db.get());
  leader.Configure(true, {2, 3});
  follower1.Configure(false, {});
  follower2.Configure(false, {});

  std::vector<uint64_t> indices;
  for (int i = 0; i < 10; i++) {
    Detach([](ReplicatedLog* log, int i, std::vector<uint64_t>* indices)
               -> Task<void> {
      auto index = co_await log->Append("request-" + std::to_string(i));
      EXPECT_TRUE(index.ok());
      if (index.ok()) indices->push_back(*index);
    }(&leader, i, &indices));
  }
  sim.Run();
  ASSERT_EQ(indices.size(), 10u);
  // Every appended record is durable on both followers.
  for (uint64_t index : indices) {
    auto from_leader = leader.Read(index);
    ASSERT_TRUE(from_leader.ok());
    EXPECT_EQ(*follower1.Read(index), *from_leader);
    EXPECT_EQ(*follower2.Read(index), *from_leader);
  }
  // Follower rejects appends.
  Status follower_append = Status::OK();
  Detach([](ReplicatedLog* log, Status* out) -> Task<void> {
    auto r = co_await log->Append("nope");
    *out = r.status();
  }(&follower1, &follower_append));
  sim.Run();
  EXPECT_EQ(follower_append.code(), StatusCode::kNotPrimary);
}

}  // namespace
}  // namespace lo::replication
