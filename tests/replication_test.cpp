// Replication tests: primary-backup batch shipping (ordering, epochs,
// reordered delivery, unreachable backups), chain replication latency
// ordering, the epoch-gated follower-read path (gate matrix, failover
// read safety, end-to-end read-your-writes), and the replicated log
// used by the baseline's load balancer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "obs/metrics.h"
#include "replication/replicator.h"
#include "runtime/runtime.h"
#include "storage/env.h"

namespace lo::replication {
namespace {

using sim::Detach;
using sim::Task;

struct Node {
  Node(sim::Network& net, sim::NodeId id, Mode mode)
      : rpc(net, id), db(std::move(*storage::DB::Open(MakeOptions(), Name(id)))),
        replicator(&rpc, db.get(), mode) {}

  storage::Options MakeOptions() {
    storage::Options options;
    options.env = &env;
    return options;
  }
  static std::string Name(sim::NodeId id) { return "/db" + std::to_string(id); }

  storage::MemEnv env;
  sim::RpcEndpoint rpc;
  std::unique_ptr<storage::DB> db;
  Replicator replicator;
};

class ReplicationTest : public ::testing::TestWithParam<Mode> {
 public:
  ReplicationTest() {
    for (sim::NodeId id = 1; id <= 3; id++) {
      nodes_.push_back(std::make_unique<Node>(net_, id, GetParam()));
    }
    // Node 1 primary, 2 and 3 backups (chain order 1 -> 2 -> 3).
    nodes_[0]->replicator.Configure(0, 1, true, {2, 3});
    nodes_[1]->replicator.Configure(0, 1, false, GetParam() == Mode::kChain
                                                  ? std::vector<sim::NodeId>{3}
                                                  : std::vector<sim::NodeId>{});
    nodes_[2]->replicator.Configure(0, 1, false, {});
  }

  Status Replicate(const std::string& key, const std::string& value) {
    Status out = Status::Unavailable("not run");
    Detach([](Node* primary, std::string key, std::string value,
              Status* out) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put(key, value);
      *out = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
    }(nodes_[0].get(), key, value, &out));
    sim_.Run();
    return out;
  }

  sim::Simulator sim_{3};
  sim::Network net_{sim_, sim::NetworkConfig{}};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_P(ReplicationTest, BatchReachesAllReplicas) {
  ASSERT_TRUE(Replicate("k", "v").ok());
  for (auto& node : nodes_) {
    auto got = node->db->Get({}, "k");
    ASSERT_TRUE(got.ok()) << "node " << node->rpc.node();
    EXPECT_EQ(*got, "v");
  }
}

TEST_P(ReplicationTest, ManyBatchesApplyInOrderEverywhere) {
  constexpr int kBatches = 60;
  int done = 0;
  for (int i = 0; i < kBatches; i++) {
    Detach([](Node* primary, int i, int* done) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put("seq", std::to_string(i));
      batch.Put("k" + std::to_string(i), "v");
      auto s = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
      EXPECT_TRUE(s.ok()) << s.ToString();
      (*done)++;
    }(nodes_[0].get(), i, &done));
  }
  sim_.Run();
  ASSERT_EQ(done, kBatches);
  for (auto& node : nodes_) {
    // All keys present; "seq" converged to the last committed batch.
    for (int i = 0; i < kBatches; i++) {
      EXPECT_TRUE(node->db->Get({}, "k" + std::to_string(i)).ok());
    }
    EXPECT_EQ(node->replicator.applied_seq(0), static_cast<uint64_t>(kBatches));
  }
  // Jitter makes some deliveries arrive out of order; the reorder buffer
  // must have handled them (this is environment-dependent, so only check
  // the invariant, not the count).
  EXPECT_EQ(*nodes_[1]->db->Get({}, "seq"), *nodes_[0]->db->Get({}, "seq"));
}

TEST_P(ReplicationTest, ReplicateOnBackupRejected) {
  Status out = Status::OK();
  Detach([](Node* backup, Status* out) -> Task<void> {
    storage::WriteBatch batch;
    batch.Put("x", "y");
    *out = co_await backup->replicator.ReplicateAndApply(0, std::move(batch));
  }(nodes_[1].get(), &out));
  sim_.Run();
  EXPECT_EQ(out.code(), StatusCode::kNotPrimary);
}

TEST_P(ReplicationTest, UnreachableBackupFailsTheCommit) {
  net_.SetNodeUp(3, false);
  Status s = Replicate("k", "v");
  ASSERT_FALSE(s.ok());
  // Epoch bump + reconfigure without node 3 lets writes proceed.
  nodes_[0]->replicator.Configure(0, 2, true, {2});
  nodes_[1]->replicator.Configure(0, 2, false, {});
  EXPECT_TRUE(Replicate("k2", "v2").ok());
  EXPECT_TRUE(nodes_[1]->db->Get({}, "k2").ok());
}

TEST_P(ReplicationTest, StaleEpochShipmentsRejected) {
  ASSERT_TRUE(Replicate("a", "1").ok());
  // Backups move to epoch 5; the primary still at epoch 1 must be refused.
  nodes_[1]->replicator.Configure(0, 5, false, GetParam() == Mode::kChain
                                                ? std::vector<sim::NodeId>{3}
                                                : std::vector<sim::NodeId>{});
  nodes_[2]->replicator.Configure(0, 5, false, {});
  Status s = Replicate("b", "2");
  EXPECT_FALSE(s.ok());
  EXPECT_GE(nodes_[1]->replicator.metrics().stale_epoch_rejections, 1u);
}

TEST_P(ReplicationTest, FollowerReadGateAndBackupAckTracking) {
  for (int i = 1; i <= 3; i++) {
    ASSERT_TRUE(Replicate("k" + std::to_string(i), "v").ok());
  }
  Replicator& primary = nodes_[0]->replicator;
  Replicator& backup = nodes_[2]->replicator;
  EpochToken token = primary.ApplyToken(0);
  EXPECT_EQ(token.epoch, 1u);
  EXPECT_EQ(token.seq, 3u);
  EXPECT_EQ(primary.max_applied_seq(), 3u);

  // The ack path reports how far each backup applied: the primary's
  // direct peers in primary-backup mode; in chain mode the successor's
  // entry aggregates the minimum applied seq down the whole chain.
  if (GetParam() == Mode::kPrimaryBackup) {
    EXPECT_EQ(primary.backup_applied_seq(0, 2), 3u);
    EXPECT_EQ(primary.backup_applied_seq(0, 3), 3u);
  } else {
    EXPECT_EQ(primary.backup_applied_seq(0, 2), 3u);
    EXPECT_EQ(nodes_[1]->replicator.backup_applied_seq(0, 3), 3u);
  }

  // The primary serves under every mode, whatever the token says.
  EXPECT_TRUE(primary.CheckFollowerRead(0, {1, 99}, ReadMode::kStrict, 0).ok());
  EXPECT_TRUE(
      primary.CheckFollowerRead(0, token, ReadMode::kPrimaryOnly, 0).ok());

  // Backup gate matrix at applied_seq = 3, epoch 1.
  EXPECT_EQ(backup.CheckFollowerRead(0, token, ReadMode::kPrimaryOnly, 0).code(),
            StatusCode::kNotPrimary);
  EXPECT_TRUE(backup.CheckFollowerRead(0, token, ReadMode::kStrict, 0).ok());
  EXPECT_TRUE(backup.CheckFollowerRead(0, {}, ReadMode::kStrict, 0).ok())
      << "a client that never wrote is satisfied by any state";
  EXPECT_EQ(backup.CheckFollowerRead(0, {1, 4}, ReadMode::kStrict, 0).code(),
            StatusCode::kEpochBehind);
  EXPECT_TRUE(backup.CheckFollowerRead(0, {1, 4}, ReadMode::kBounded, 1).ok());
  EXPECT_EQ(backup.CheckFollowerRead(0, {1, 6}, ReadMode::kBounded, 1).code(),
            StatusCode::kEpochBehind);
  EXPECT_TRUE(backup.CheckFollowerRead(0, {1, 99}, ReadMode::kEventual, 0).ok());
  // Tokens from another configuration epoch never silently serve.
  EXPECT_EQ(backup.CheckFollowerRead(0, {2, 1}, ReadMode::kStrict, 0).code(),
            StatusCode::kEpochBehind);

  // Tail reads: only the chain's tail is linearizable; everyone else
  // (and every primary-backup backup) bounces.
  if (GetParam() == Mode::kChain) {
    EXPECT_FALSE(nodes_[1]->replicator.is_chain_tail(0));
    EXPECT_TRUE(backup.is_chain_tail(0));
    EXPECT_TRUE(backup.CheckFollowerRead(0, token, ReadMode::kTail, 0).ok());
    EXPECT_EQ(nodes_[1]->replicator.CheckFollowerRead(0, token, ReadMode::kTail, 0)
                  .code(),
              StatusCode::kEpochBehind);
  } else {
    EXPECT_FALSE(backup.is_chain_tail(0));
    EXPECT_EQ(backup.CheckFollowerRead(0, token, ReadMode::kTail, 0).code(),
              StatusCode::kEpochBehind);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplicationTest,
                         ::testing::Values(Mode::kPrimaryBackup, Mode::kChain),
                         [](const auto& info) {
                           return info.param == Mode::kPrimaryBackup ? "PrimaryBackup"
                                                                     : "Chain";
                         });

TEST(ReplicationLatency, ChainIsSlowerThanPrimaryBackup) {
  // Same topology, both modes: chain must take ~2 sequential hops where
  // primary-backup takes 1 parallel round-trip (the paper's reason for
  // choosing primary-backup).
  auto measure = [](Mode mode) {
    sim::Simulator sim(7);
    sim::Network net(sim, sim::NetworkConfig{.jitter_mean = 0});
    std::vector<std::unique_ptr<Node>> nodes;
    for (sim::NodeId id = 1; id <= 3; id++) {
      nodes.push_back(std::make_unique<Node>(net, id, mode));
    }
    nodes[0]->replicator.Configure(0, 1, true, mode == Mode::kChain
                                                ? std::vector<sim::NodeId>{2}
                                                : std::vector<sim::NodeId>{2, 3});
    nodes[1]->replicator.Configure(0, 1, false, mode == Mode::kChain
                                                 ? std::vector<sim::NodeId>{3}
                                                 : std::vector<sim::NodeId>{});
    nodes[2]->replicator.Configure(0, 1, false, {});
    sim::Time finished = 0;
    Detach([](Node* primary, sim::Simulator* sim, sim::Time* finished) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put("k", "v");
      auto s = co_await primary->replicator.ReplicateAndApply(0, std::move(batch));
      EXPECT_TRUE(s.ok());
      *finished = sim->Now();
    }(nodes[0].get(), &sim, &finished));
    sim.Run();
    return finished;
  };
  sim::Time pb = measure(Mode::kPrimaryBackup);
  sim::Time chain = measure(Mode::kChain);
  EXPECT_GT(chain, pb + sim::Micros(50)) << "chain should pay an extra hop";
}

TEST(ReplicationFaults, OneWayPartitionFailsCommitThenPromotionRecovers) {
  sim::Simulator sim(13);
  sim::Network net(sim, sim::NetworkConfig{});
  std::vector<std::unique_ptr<Node>> nodes;
  for (sim::NodeId id = 1; id <= 3; id++) {
    nodes.push_back(std::make_unique<Node>(net, id, Mode::kPrimaryBackup));
  }
  nodes[0]->replicator.Configure(0, 1, true, {2, 3});
  nodes[1]->replicator.Configure(0, 1, false, {});
  nodes[2]->replicator.Configure(0, 1, false, {});

  auto replicate = [&](Node* node, std::string key, std::string value) {
    Status out = Status::Unavailable("not run");
    Detach([](Node* n, std::string k, std::string v, Status* out) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put(k, v);
      *out = co_await n->replicator.ReplicateAndApply(0, std::move(batch));
    }(node, std::move(key), std::move(value), &out));
    sim.Run();
    return out;
  };

  ASSERT_TRUE(replicate(nodes[0].get(), "a", "1").ok());

  // Gray failure: the primary's shipments to backup 3 vanish, but 3 is
  // alive and can still talk to everyone else. The commit must fail
  // loudly (ack timeout), never succeed with a silently stale backup.
  net.PartitionOneWay(1, 3);
  Status s = replicate(nodes[0].get(), "b", "2");
  ASSERT_FALSE(s.ok());
  EXPECT_GE(nodes[0]->replicator.metrics().failed_peer_acks, 1u);
  EXPECT_TRUE(nodes[2]->db->Get({}, "b").status().IsNotFound());

  // Failover: epoch bump promotes backup 2 (it holds the full acked
  // prefix); the partitioned node 3 is evicted from the set — without
  // anti-entropy it cannot rejoin mid-epoch, having missed a shipment.
  nodes[1]->replicator.Configure(0, 2, true, {});
  EXPECT_EQ(nodes[1]->replicator.metrics().promotions, 1u);
  ASSERT_TRUE(replicate(nodes[1].get(), "c", "3").ok());
  EXPECT_EQ(*nodes[1]->db->Get({}, "c"), "3");

  // The deposed primary is fenced: its epoch-1 shipments are refused.
  s = replicate(nodes[0].get(), "d", "4");
  EXPECT_FALSE(s.ok());
  EXPECT_GE(nodes[1]->replicator.metrics().stale_epoch_rejections, 1u);
  EXPECT_TRUE(nodes[1]->db->Get({}, "d").status().IsNotFound());
}

TEST(FollowerReadFailover, StaleTokenFromDeadPrimaryBounces) {
  sim::Simulator sim(31);
  sim::Network net(sim, sim::NetworkConfig{});
  std::vector<std::unique_ptr<Node>> nodes;
  for (sim::NodeId id = 1; id <= 3; id++) {
    nodes.push_back(std::make_unique<Node>(net, id, Mode::kPrimaryBackup));
  }
  nodes[0]->replicator.Configure(0, 1, true, {2, 3});
  nodes[1]->replicator.Configure(0, 1, false, {});
  nodes[2]->replicator.Configure(0, 1, false, {});

  auto replicate = [&](Node* node, std::string key, std::string value) {
    Status out = Status::Unavailable("not run");
    Detach([](Node* n, std::string k, std::string v, Status* out) -> Task<void> {
      storage::WriteBatch batch;
      batch.Put(k, v);
      *out = co_await n->replicator.ReplicateAndApply(0, std::move(batch));
    }(node, std::move(key), std::move(value), &out));
    sim.Run();
    return out;
  };

  ASSERT_TRUE(replicate(nodes[0].get(), "a", "1").ok());
  EpochToken stale = nodes[0]->replicator.ApplyToken(0);
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_EQ(stale.seq, 1u);
  // While epoch 1 is live, the token strictly serves at any backup.
  ASSERT_TRUE(
      nodes[2]->replicator.CheckFollowerRead(0, stale, ReadMode::kStrict, 0).ok());

  // The primary dies; backup 2 is promoted and 3 follows it in epoch 2.
  net.SetNodeUp(1, false);
  nodes[1]->replicator.Configure(0, 2, true, {3});
  nodes[2]->replicator.Configure(0, 2, false, {});
  EXPECT_EQ(nodes[1]->replicator.metrics().promotions, 1u);
  ASSERT_TRUE(replicate(nodes[1].get(), "b", "2").ok());

  // The dead primary's token must bounce under strict *and* bounded —
  // its sequence space is not comparable across the epoch bump — while
  // eventual reads still serve.
  EXPECT_EQ(
      nodes[2]->replicator.CheckFollowerRead(0, stale, ReadMode::kStrict, 0).code(),
      StatusCode::kEpochBehind);
  EXPECT_EQ(nodes[2]
                ->replicator.CheckFollowerRead(0, stale, ReadMode::kBounded, 100)
                .code(),
            StatusCode::kEpochBehind);
  EXPECT_TRUE(
      nodes[2]->replicator.CheckFollowerRead(0, stale, ReadMode::kEventual, 0).ok());

  // A token minted by the new primary serves once the backup applied it.
  EpochToken fresh = nodes[1]->replicator.ApplyToken(0);
  EXPECT_EQ(fresh.epoch, 2u);
  EXPECT_EQ(fresh.seq, 2u);
  EXPECT_TRUE(
      nodes[2]->replicator.CheckFollowerRead(0, fresh, ReadMode::kStrict, 0).ok());
}

// ----------------------------------------------- deployment-level reads

// The counter type the deployment tests run: "add" mutates, "read" is
// the deterministic read-only method follower reads serve (and cache).
void RegisterCounterType(runtime::TypeRegistry* types) {
  runtime::ObjectType type;
  type.name = "counter";
  type.methods["add"] = runtime::MethodImpl{
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx,
                   std::string arg) -> Task<Result<std::string>> {
        uint64_t delta = arg.empty() ? 1 : std::stoull(arg);
        auto current = co_await ctx.Get("value");
        uint64_t value = current.ok() ? std::stoull(*current) : 0;
        value += delta;
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", std::to_string(value)));
        co_return std::to_string(value);
      }};
  type.methods["read"] = runtime::MethodImpl{
      .kind = runtime::MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](runtime::InvocationContext& ctx,
                   std::string) -> Task<Result<std::string>> {
        auto value = co_await ctx.Get("value");
        co_return value.ok() ? *value : std::string("0");
      }};
  LO_CHECK(types->Register(std::move(type)).ok());
}

// Drives one client coroutine to completion inside the simulator.
Result<std::string> RunClient(sim::Simulator& sim,
                              sim::Task<Result<std::string>> task) {
  Result<std::string> out = Status::Unavailable("not run");
  bool done = false;
  Detach([](sim::Task<Result<std::string>> t, Result<std::string>* out,
            bool* done) -> Task<void> {
    *out = co_await std::move(t);
    *done = true;
  }(std::move(task), &out, &done));
  while (!done) EXPECT_TRUE(sim.Step());
  return out;
}

// End-to-end read-your-writes through the real replication stream: a
// strict-mode client alternates writes and follower reads; every read
// must observe its own latest write, wherever it was served.
TEST(FollowerReadsEndToEnd, StrictReadsAreNeverStale) {
  sim::Simulator sim(53);
  runtime::TypeRegistry types;
  RegisterCounterType(&types);
  obs::MetricsRegistry registry;
  cluster::DeploymentOptions options;
  options.client.read_mode = ReadMode::kStrict;
  options.metrics_registry = &registry;
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  ASSERT_TRUE(RunClient(sim, client.Create("c/s", "counter")).ok());
  for (int i = 1; i <= 15; i++) {
    auto wrote = RunClient(sim, client.Invoke("c/s", "add", "1"));
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    ASSERT_EQ(*wrote, std::to_string(i));
    auto read = RunClient(sim, client.InvokeRead("c/s", "read", ""));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, std::to_string(i)) << "strict read served stale state";
  }
  // The write acks actually carried tokens, and reads actually spread
  // beyond the primary (bounces count: they prove the gate fired).
  EXPECT_GT(client.TokenFor("c/s").seq, 0u);
  const auto& metrics = client.metrics();
  EXPECT_GT(metrics.follower_reads + metrics.read_bounces, 0u);

  // The obs registry exports the replication read-path counters.
  bool apply_epoch_exported = false;
  bool follower_reads_exported = false;
  for (const auto& sample : registry.Snapshot()) {
    if (sample.name == "repl.apply_epoch" && sample.value > 0) {
      apply_epoch_exported = true;
    }
    if (sample.name == "repl.follower_reads") follower_reads_exported = true;
  }
  EXPECT_TRUE(apply_epoch_exported) << "repl.apply_epoch missing or zero";
  EXPECT_TRUE(follower_reads_exported);
}

// After a failover the promoted backup must not serve results it cached
// while it was a backup: they were valid for the old primary's history.
TEST(FollowerReadFailover, PromotedBackupDropsPrePromotionCachedResults) {
  sim::Simulator sim(41);
  runtime::TypeRegistry types;
  RegisterCounterType(&types);
  cluster::DeploymentOptions options;
  options.client.read_mode = ReadMode::kEventual;
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  ASSERT_TRUE(RunClient(sim, client.Create("c/f", "counter")).ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(RunClient(sim, client.Invoke("c/f", "add", "1")).ok());
  }
  // Spread eventual reads until every backup served (and cached) one.
  // Replication is synchronous in this deployment, so none are stale.
  for (int i = 0; i < 30; i++) {
    auto read = RunClient(sim, client.InvokeRead("c/f", "read", ""));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, "3");
  }
  uint64_t follower_served = 0;
  for (int i = 1; i < deployment.num_nodes(); i++) {
    EXPECT_GT(deployment.node(i).runtime().result_cache_size(), 0u)
        << "backup " << i << " never cached a follower read";
    follower_served += deployment.node(i).metrics().follower_reads;
  }
  EXPECT_GT(follower_served, 0u);

  deployment.KillStorageNode(0);  // bootstrap primary of the only shard
  sim.RunFor(sim::Millis(400));   // failure detection + reconfiguration

  int promoted = -1;
  for (int i = 1; i < deployment.num_nodes(); i++) {
    if (deployment.node(i).replicator().metrics().promotions > 0) promoted = i;
  }
  ASSERT_NE(promoted, -1) << "no backup was promoted";
  EXPECT_EQ(deployment.node(promoted).runtime().result_cache_size(), 0u)
      << "promotion left pre-failover cached results servable";

  // And the promoted primary answers reads with the true state.
  auto read = RunClient(sim, client.InvokeRead("c/f", "read", ""));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "3");
}

TEST(ReplicatedLogTest, AppendReplicatesToFollowers) {
  sim::Simulator sim(9);
  sim::Network net(sim, sim::NetworkConfig{});
  storage::MemEnv env;
  auto make_db = [&](const std::string& name) {
    storage::Options options;
    options.env = &env;
    return std::move(*storage::DB::Open(options, name));
  };
  sim::RpcEndpoint leader_rpc(net, 1), f1_rpc(net, 2), f2_rpc(net, 3);
  auto leader_db = make_db("/l");
  auto f1_db = make_db("/f1");
  auto f2_db = make_db("/f2");
  ReplicatedLog leader(&leader_rpc, leader_db.get());
  ReplicatedLog follower1(&f1_rpc, f1_db.get());
  ReplicatedLog follower2(&f2_rpc, f2_db.get());
  leader.Configure(true, {2, 3});
  follower1.Configure(false, {});
  follower2.Configure(false, {});

  std::vector<uint64_t> indices;
  for (int i = 0; i < 10; i++) {
    Detach([](ReplicatedLog* log, int i, std::vector<uint64_t>* indices)
               -> Task<void> {
      auto index = co_await log->Append("request-" + std::to_string(i));
      EXPECT_TRUE(index.ok());
      if (index.ok()) indices->push_back(*index);
    }(&leader, i, &indices));
  }
  sim.Run();
  ASSERT_EQ(indices.size(), 10u);
  // Every appended record is durable on both followers.
  for (uint64_t index : indices) {
    auto from_leader = leader.Read(index);
    ASSERT_TRUE(from_leader.ok());
    EXPECT_EQ(*follower1.Read(index), *from_leader);
    EXPECT_EQ(*follower2.Read(index), *from_leader);
  }
  // Follower rejects appends.
  Status follower_append = Status::OK();
  Detach([](ReplicatedLog* log, Status* out) -> Task<void> {
    auto r = co_await log->Append("nope");
    *out = r.status();
  }(&follower1, &follower_append));
  sim.Run();
  EXPECT_EQ(follower_append.code(), StatusCode::kNotPrimary);
}

}  // namespace
}  // namespace lo::replication
