// ReTwis application tests: post/timeline codecs, the Zipf social graph
// generator, direct DB seeding, the closed-loop driver, and a
// differential test that the native and LambdaVM implementations of the
// user type produce byte-identical storage state and results.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "retwis/driver.h"
#include "vm/assembler.h"
#include "vm/disassembler.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"
#include "runtime/runtime.h"
#include "storage/env.h"

namespace lo::retwis {
namespace {

using sim::Detach;
using sim::Task;

TEST(UserModule, DisassemblerRoundTripsTheRealApp) {
  // The application module exercises every addressing mode the
  // disassembler has to handle.
  auto module = vm::Assemble(UserAsmSource());
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  auto again = vm::Assemble(vm::Disassemble(*module));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->Serialize(), module->Serialize());
}

TEST(PostCodec, RoundTrip) {
  Post post{.author = "ada", .time_ms = 123456, .message = "hello world"};
  auto decoded = Post::Decode(post.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->author, "ada");
  EXPECT_EQ(decoded->time_ms, 123456u);
  EXPECT_EQ(decoded->message, "hello world");
}

TEST(PostCodec, EmptyAuthorAndMessage) {
  Post post;
  auto decoded = Post::Decode(post.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->author, "");
  EXPECT_EQ(decoded->message, "");
}

TEST(PostCodec, RejectsTruncated) {
  EXPECT_FALSE(Post::Decode("").ok());
  std::string blob(1, '\x20');  // claims 32-char author, provides none
  EXPECT_FALSE(Post::Decode(blob).ok());
}

TEST(TimelineCodec, RoundTripMultiple) {
  std::string payload;
  for (int i = 0; i < 5; i++) {
    Post post{.author = "u", .time_ms = static_cast<uint64_t>(i),
              .message = "m" + std::to_string(i)};
    std::string blob = post.Encode();
    payload.push_back(static_cast<char>(blob.size() & 0xff));
    payload.push_back(static_cast<char>((blob.size() >> 8) & 0xff));
    payload += blob;
  }
  auto posts = DecodeTimeline(payload);
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 5u);
  EXPECT_EQ((*posts)[4].message, "m4");
}

TEST(TimelineCodec, RejectsTornPayload) {
  std::string payload("\x08\x00", 2);  // length prefix claims 8 bytes...
  payload += "abc";                     // ...but only 3 follow
  EXPECT_FALSE(DecodeTimeline(payload).ok());
}

TEST(WorkloadGen, GraphIsZipfSkewed) {
  WorkloadConfig config;
  config.num_users = 2000;
  config.avg_follows_per_user = 10;
  config.zipf_alpha = 1.0;
  Workload workload(config);
  EXPECT_NEAR(workload.MeanFollowerCount(), 10.0, 1.5);
  // Rank-0 user dominates (they are the most-followed account).
  EXPECT_GT(workload.FollowerCount(0), workload.MeanFollowerCount() * 20);
  EXPECT_EQ(workload.MaxFollowerCount(), workload.FollowerCount(0));
}

TEST(WorkloadGen, CommunityIsClosed) {
  WorkloadConfig config;
  config.num_users = 1000;
  config.community_size = 100;
  Workload workload(config);
  // Community members' followers all come from within the community;
  // verify through the seeded DB.
  storage::MemEnv env;
  storage::Options options;
  options.env = &env;
  auto db = std::move(*storage::DB::Open(options, "/w"));
  ASSERT_TRUE(workload.SeedDb(db.get()).ok());
  for (uint64_t user : {0ull, 13ull, 99ull}) {
    std::string oid = workload.UserId(user);
    uint64_t n = workload.FollowerCount(user);
    for (uint64_t j = 0; j < n; j++) {
      auto follower = db->Get({}, runtime::FieldKey(oid, FollowerEntryKey(j)));
      ASSERT_TRUE(follower.ok());
      uint64_t id = std::stoull(follower->substr(5));  // strip "user/"
      EXPECT_LT(id, config.community_size);
    }
  }
}

TEST(WorkloadGen, SeedDbLayoutMatchesRuntimeExpectations) {
  WorkloadConfig config;
  config.num_users = 50;
  config.initial_posts_per_user = 3;
  Workload workload(config);
  storage::MemEnv env;
  storage::Options options;
  options.env = &env;
  auto db = std::move(*storage::DB::Open(options, "/w"));
  ASSERT_TRUE(workload.SeedDb(db.get()).ok());

  std::string oid = workload.UserId(7);
  EXPECT_EQ(*db->Get({}, runtime::ObjectExistsKey(oid)), "user");
  EXPECT_EQ(*db->Get({}, runtime::FieldKey(oid, kNameKey)), "account-7");
  auto count = db->Get({}, runtime::FieldKey(oid, kTimelineCountKey));
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->size(), 8u);
  auto entry = db->Get({}, runtime::FieldKey(oid, TimelineEntryKey(2)));
  ASSERT_TRUE(entry.ok());
  auto post = Post::Decode(*entry);
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->author, "account-7");
}

TEST(WorkloadGen, RequestsAreWellFormed) {
  Workload workload(WorkloadConfig{.num_users = 100});
  Rng rng(3);
  for (int i = 0; i < 100; i++) {
    auto post = workload.Next(OpType::kPost, rng);
    EXPECT_EQ(post.method, "create_post");
    EXPECT_GE(post.argument.size(), workload.config().message_length);
    auto timeline = workload.Next(OpType::kGetTimeline, rng);
    EXPECT_EQ(timeline.method, "get_timeline");
    EXPECT_EQ(timeline.argument.size(), 8u);
    auto follow = workload.Next(OpType::kFollow, rng);
    EXPECT_EQ(follow.method, "follow");
    EXPECT_EQ(follow.argument.substr(0, 5), "user/");
  }
}

TEST(WorkloadGen, ZipfReadsSkewOnlyTimelineTargets) {
  WorkloadConfig config;
  config.num_users = 1000;
  config.zipf_reads = true;
  config.zipf_alpha = 1.2;
  Workload workload(config);
  Rng rng(5);
  std::map<std::string, int> read_counts;
  for (int i = 0; i < 5000; i++) {
    read_counts[workload.Next(OpType::kGetTimeline, rng).oid]++;
  }
  // Hot skew: the most popular read target dominates.
  int max_count = 0;
  for (const auto& [oid, count] : read_counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 300);  // >6% of reads on one of 1000 users

  std::map<std::string, int> write_counts;
  for (int i = 0; i < 5000; i++) {
    write_counts[workload.Next(OpType::kPost, rng).oid]++;
  }
  int max_write = 0;
  for (const auto& [oid, count] : write_counts) max_write = std::max(max_write, count);
  EXPECT_LT(max_write, 30);  // uniform writes stay flat
}

// Differential test: native and VM user types must behave identically —
// same method results, byte-identical storage state.
class EquivalenceTest : public ::testing::Test {
 public:
  struct System {
    System(bool use_vm) {
      storage::Options options;
      options.env = &env;
      db = std::move(*storage::DB::Open(options, "/eq"));
      EXPECT_TRUE(RegisterUserType(&types, use_vm).ok());
      runtime = std::make_unique<runtime::Runtime>(&sim, db.get(), &types);
    }

    Result<std::string> Invoke(const std::string& oid, const std::string& method,
                               const std::string& arg) {
      Result<std::string> out = Status::Unavailable("not run");
      bool done = false;
      Detach([](runtime::Runtime* rt, std::string oid, std::string method,
                std::string arg, Result<std::string>* out,
                bool* done) -> Task<void> {
        *out = co_await rt->Invoke(std::move(oid), std::move(method),
                                   std::move(arg));
        *done = true;
      }(runtime.get(), oid, method, arg, &out, &done));
      sim.Run();
      EXPECT_TRUE(done);
      return out;
    }

    void Create(const std::string& oid) {
      bool done = false;
      Detach([](runtime::Runtime* rt, std::string oid, bool* done) -> Task<void> {
        auto r = co_await rt->CreateObject(std::move(oid), "user");
        EXPECT_TRUE(r.ok());
        *done = true;
      }(runtime.get(), oid, &done));
      sim.Run();
    }

    std::map<std::string, std::string> DumpState() {
      std::map<std::string, std::string> state;
      auto iter = db->NewIterator({});
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        state[std::string(iter->key())] = std::string(iter->value());
      }
      return state;
    }

    sim::Simulator sim{99};  // same seed -> same virtual timestamps
    storage::MemEnv env;
    std::unique_ptr<storage::DB> db;
    runtime::TypeRegistry types;
    std::unique_ptr<runtime::Runtime> runtime;
  };
};

TEST_F(EquivalenceTest, NativeAndVmProduceIdenticalStateAndResults) {
  System native(false), vm(true);
  auto both = [&](const std::string& oid, const std::string& method,
                  const std::string& arg) {
    auto a = native.Invoke(oid, method, arg);
    auto b = vm.Invoke(oid, method, arg);
    ASSERT_EQ(a.ok(), b.ok()) << method << ": " << a.status().ToString() << " vs "
                              << b.status().ToString();
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << method;
    }
  };
  for (auto* system : {&native, &vm}) {
    system->Create("user/x");
    system->Create("user/y");
    system->Create("user/z");
  }
  both("user/x", "init", "xavier");
  both("user/y", "init", "yvonne");
  both("user/z", "init", "zed");
  both("user/x", "follow", "user/y");
  both("user/x", "follow", "user/z");
  both("user/x", "create_post", "first post");
  both("user/x", "create_post", "second post");
  both("user/y", "get_timeline", EncodeU64(10));
  both("user/z", "get_timeline", EncodeU64(1));
  both("user/y", "store_post", Post{.author = "raw", .time_ms = 5,
                                    .message = "direct"}.Encode());
  both("user/y", "get_timeline", EncodeU64(10));

  EXPECT_EQ(native.DumpState(), vm.DumpState())
      << "native and bytecode implementations diverged in storage layout";
}

TEST(Driver, ClosedLoopCountsAndLatencies) {
  // A stub invoker with a fixed 1ms latency: with 4 clients over 100ms
  // of measure window, throughput must be ~4000/s and p50 ~1ms.
  sim::Simulator sim(1);
  Workload workload(WorkloadConfig{.num_users = 10});
  std::vector<Invoker> invokers;
  for (int i = 0; i < 4; i++) {
    invokers.push_back([&sim](const Request&) -> Task<Result<std::string>> {
      co_await sim.Sleep(sim::Millis(1));
      co_return std::string("ok");
    });
  }
  DriverConfig config;
  config.warmup = sim::Millis(10);
  config.measure = sim::Millis(100);
  auto result = RunClosedLoop(sim, workload, OpType::kFollow,
                              std::move(invokers), config);
  EXPECT_NEAR(result.Throughput(), 4000, 200);
  EXPECT_NEAR(static_cast<double>(result.latency_us.Percentile(0.5)), 1000, 100);
  EXPECT_EQ(result.errors, 0u);
}

TEST(Driver, ErrorsAreCountedNotRecorded) {
  sim::Simulator sim(1);
  Workload workload(WorkloadConfig{.num_users = 10});
  std::vector<Invoker> invokers;
  invokers.push_back([&sim](const Request&) -> Task<Result<std::string>> {
    co_await sim.Sleep(sim::Millis(1));
    co_return Status::Unavailable("down");
  });
  DriverConfig config;
  config.warmup = 0;
  config.measure = sim::Millis(20);
  auto result = RunClosedLoop(sim, workload, OpType::kFollow,
                              std::move(invokers), config);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_GT(result.errors, 0u);
  EXPECT_EQ(result.latency_us.count(), 0u);
}

TEST(Driver, MixedWorkloadUsesAllOps) {
  sim::Simulator sim(2);
  Workload workload(WorkloadConfig{.num_users = 10});
  std::map<std::string, int> methods;
  std::vector<Invoker> invokers;
  invokers.push_back(
      [&sim, &methods](const Request& request) -> Task<Result<std::string>> {
        methods[request.method]++;
        co_await sim.Sleep(sim::Micros(100));
        co_return std::string("ok");
      });
  DriverConfig config;
  config.warmup = 0;
  config.measure = sim::Millis(50);
  config.mix = {{OpType::kPost, 0.3},
                {OpType::kGetTimeline, 0.5},
                {OpType::kFollow, 0.2}};
  (void)RunClosedLoop(sim, workload, std::move(invokers), config);
  EXPECT_GT(methods["create_post"], 0);
  EXPECT_GT(methods["get_timeline"], 0);
  EXPECT_GT(methods["follow"], 0);
  EXPECT_GT(methods["get_timeline"], methods["follow"]);
}

}  // namespace
}  // namespace lo::retwis
