// Runtime tests: the LambdaObjects model itself — object lifecycle,
// field APIs, invocation linearizability (atomicity / isolation /
// real-time), nested-call commit semantics, VM-backed methods, and the
// consistent result cache.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/rng.h"
#include "runtime/runtime.h"
#include "storage/env.h"
#include "vm/assembler.h"

namespace lo::runtime {
namespace {

using sim::Detach;
using sim::Task;

class RuntimeTest : public ::testing::Test {
 public:
  RuntimeTest() {
    storage::Options options;
    options.env = &env_;
    db_ = std::move(*storage::DB::Open(options, "/db"));
    RegisterCounterType();
    runtime_ = std::make_unique<Runtime>(&sim_, db_.get(), &types_);
    // Model WAL-sync latency on commit; this creates the suspension
    // points that let concurrent invocations actually interleave.
    runtime_->SetCommitSink([this](const ObjectId&, storage::WriteBatch batch,
                                   obs::TraceContext) -> Task<Status> {
      co_await sim_.Sleep(sim::Micros(80));
      co_return db_->Write({.sync = true}, &batch);
    });
  }

  // A "counter" type with rw increment, ro read, and a failing method.
  void RegisterCounterType() {
    ObjectType type;
    type.name = "counter";
    type.fields = {{"value", FieldKind::kValue}, {"log", FieldKind::kList}};
    type.methods["incr"] = MethodImpl{
        .kind = MethodKind::kReadWrite,
        .native = [](InvocationContext& ctx, std::string arg)
            -> Task<Result<std::string>> {
          uint64_t delta = arg.empty() ? 1 : std::stoull(arg);
          auto current = co_await ctx.Get("value");
          uint64_t value = 0;
          if (current.ok()) value = std::stoull(*current);
          value += delta;
          LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", std::to_string(value)));
          LO_CO_RETURN_IF_ERROR(co_await ctx.ListPush("log", arg));
          co_return std::to_string(value);
        }};
    type.methods["read"] = MethodImpl{
        .kind = MethodKind::kReadOnly,
        .deterministic = true,
        .native = [](InvocationContext& ctx, std::string)
            -> Task<Result<std::string>> {
          auto value = co_await ctx.Get("value");
          co_return value.ok() ? *value : std::string("0");
        }};
    type.methods["fail_after_write"] = MethodImpl{
        .kind = MethodKind::kReadWrite,
        .native = [](InvocationContext& ctx, std::string)
            -> Task<Result<std::string>> {
          LO_CO_RETURN_IF_ERROR(co_await ctx.Set("value", "999"));
          co_return Status::Aborted("intentional failure");
        }};
    type.methods["write_from_ro"] = MethodImpl{
        .kind = MethodKind::kReadOnly,
        .native = [](InvocationContext& ctx, std::string)
            -> Task<Result<std::string>> {
          Status s = co_await ctx.Set("value", "1");
          co_return s;  // expected to fail
        }};
    ASSERT_TRUE(types_.Register(std::move(type)).ok());
  }

  // Runs a coroutine to completion inside the simulator.
  template <typename Fn>
  void RunSim(Fn&& body) {
    bool finished = false;
    Detach([](Fn body, bool* finished) -> Task<void> {
      co_await body();
      *finished = true;
    }(std::forward<Fn>(body), &finished));
    sim_.Run();
    ASSERT_TRUE(finished) << "simulation deadlocked";
  }

  Result<std::string> Invoke(const ObjectId& oid, const std::string& method,
                             const std::string& arg = "") {
    Result<std::string> out = Status::Unavailable("not run");
    RunSim([&]() -> Task<void> {
      out = co_await runtime_->Invoke(oid, method, arg);
    });
    return out;
  }

  void Create(const ObjectId& oid, const std::string& type = "counter") {
    RunSim([&]() -> Task<void> {
      auto r = co_await runtime_->CreateObject(oid, type);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    });
  }

  sim::Simulator sim_{17};
  storage::MemEnv env_;
  std::unique_ptr<storage::DB> db_;
  TypeRegistry types_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(RuntimeTest, TypeRegistryRejectsBadTypes) {
  ObjectType no_impl;
  no_impl.name = "broken";
  no_impl.methods["m"] = MethodImpl{};
  EXPECT_FALSE(types_.Register(std::move(no_impl)).ok());

  ObjectType deterministic_rw;
  deterministic_rw.name = "broken2";
  deterministic_rw.methods["m"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .deterministic = true,
      .native = [](InvocationContext&, std::string) -> Task<Result<std::string>> {
        co_return std::string();
      }};
  EXPECT_FALSE(types_.Register(std::move(deterministic_rw)).ok());

  ObjectType dup;
  dup.name = "counter";  // already registered by the fixture
  EXPECT_FALSE(types_.Register(std::move(dup)).ok());
}

TEST_F(RuntimeTest, CreateInvokeLifecycle) {
  Create("counter/a");
  EXPECT_EQ(*runtime_->TypeOf("counter/a"), "counter");
  auto r = Invoke("counter/a", "incr", "5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "5");
  r = Invoke("counter/a", "read");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "5");
}

TEST_F(RuntimeTest, CreateDuplicateFails) {
  Create("counter/a");
  RunSim([&]() -> Task<void> {
    auto r = co_await runtime_->CreateObject("counter/a", "counter");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  });
}

TEST_F(RuntimeTest, CreateUnknownTypeFails) {
  RunSim([&]() -> Task<void> {
    auto r = co_await runtime_->CreateObject("x/1", "nonsense");
    EXPECT_FALSE(r.ok());
  });
}

TEST_F(RuntimeTest, InvokeOnMissingObjectFails) {
  auto r = Invoke("counter/ghost", "incr");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(RuntimeTest, InvokeUnknownMethodFails) {
  Create("counter/a");
  auto r = Invoke("counter/a", "explode");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(RuntimeTest, AtomicityFailedInvocationLeavesNoTrace) {
  Create("counter/a");
  ASSERT_TRUE(Invoke("counter/a", "incr", "7").ok());
  auto r = Invoke("counter/a", "fail_after_write");
  ASSERT_FALSE(r.ok());
  // The buffered Set("value", "999") must have been discarded.
  EXPECT_EQ(*Invoke("counter/a", "read"), "7");
  EXPECT_GE(runtime_->metrics().aborts, 1u);
}

TEST_F(RuntimeTest, ReadOnlyCannotWrite) {
  Create("counter/a");
  auto r = Invoke("counter/a", "write_from_ro");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(*Invoke("counter/a", "read"), "0");
}

TEST_F(RuntimeTest, PerObjectMutualExclusionFifo) {
  Create("counter/a");
  // 50 concurrent increments of the same object must all apply: the
  // read-modify-write races would lose updates without the object lock.
  constexpr int kConcurrent = 50;
  int done = 0;
  for (int i = 0; i < kConcurrent; i++) {
    Detach([](Runtime* rt, int* done) -> Task<void> {
      auto r = co_await rt->Invoke("counter/a", "incr", "1");
      EXPECT_TRUE(r.ok());
      if (r.ok()) (*done)++;
    }(runtime_.get(), &done));
  }
  sim_.Run();
  ASSERT_EQ(done, kConcurrent);
  EXPECT_EQ(*Invoke("counter/a", "read"), std::to_string(kConcurrent));
  EXPECT_GT(runtime_->metrics().lock_waits, 0u);
}

TEST_F(RuntimeTest, DifferentObjectsDoNotSerialize) {
  Create("counter/a");
  Create("counter/b");
  RunSim([&]() -> Task<void> {
    // Interleave without awaiting: both proceed independently.
    auto ta = runtime_->Invoke("counter/a", "incr", "1");
    auto tb = runtime_->Invoke("counter/b", "incr", "1");
    auto ra = co_await std::move(ta);
    auto rb = co_await std::move(tb);
    EXPECT_TRUE(ra.ok());
    EXPECT_TRUE(rb.ok());
  });
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");
  EXPECT_EQ(*Invoke("counter/b", "read"), "1");
}

TEST_F(RuntimeTest, ListSemantics) {
  Create("counter/a");
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(Invoke("counter/a", "incr", std::to_string(i)).ok());
  }
  // Read the log list newest-first through a read-only method.
  ObjectType type;
  type.name = "logreader";
  EXPECT_FALSE(types_.Register(std::move(type)).ok() &&
               false);  // placeholder no-op; list read tested below
  RunSim([&]() -> Task<void> {
    InvocationContext ctx(runtime_.get(), "counter/a", MethodKind::kReadOnly,
                          nullptr);
    auto newest = co_await ctx.ListNewest("log", 3);
    EXPECT_TRUE(newest.ok());
    if (newest.ok() && newest->size() == 3) {
      EXPECT_EQ((*newest)[0], "4");
      EXPECT_EQ((*newest)[1], "3");
      EXPECT_EQ((*newest)[2], "2");
    } else if (newest.ok()) {
      ADD_FAILURE() << "expected 3 entries, got " << newest->size();
    }
    auto len = co_await ctx.ListLen("log");
    EXPECT_TRUE(len.ok());
    if (len.ok()) EXPECT_EQ(*len, 5u);
  });
}

TEST_F(RuntimeTest, MapSemantics) {
  ObjectType type;
  type.name = "kvobj";
  type.methods["set"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string arg)
          -> Task<Result<std::string>> {
        auto eq = arg.find('=');
        LO_CO_RETURN_IF_ERROR(co_await ctx.MapSet("m", arg.substr(0, eq),
                                                  arg.substr(eq + 1)));
        co_return std::string("ok");
      }};
  type.methods["del"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string arg)
          -> Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.MapDelete("m", arg));
        co_return std::string("ok");
      }};
  type.methods["get"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .native = [](InvocationContext& ctx, std::string arg)
          -> Task<Result<std::string>> { co_return co_await ctx.MapGet("m", arg); }};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("kv/1", "kvobj");
  ASSERT_TRUE(Invoke("kv/1", "set", "color=red").ok());
  ASSERT_TRUE(Invoke("kv/1", "set", "shape=round").ok());
  EXPECT_EQ(*Invoke("kv/1", "get", "color"), "red");
  ASSERT_TRUE(Invoke("kv/1", "del", "color").ok());
  EXPECT_TRUE(Invoke("kv/1", "get", "color").status().IsNotFound());
  EXPECT_EQ(*Invoke("kv/1", "get", "shape"), "round");
}

TEST_F(RuntimeTest, NestedInvokeCommitsCallerWritesFirst) {
  // Type whose method writes a field, then invokes another object whose
  // method *reads the first object's state* through a third call — the
  // paper's commit-before-nested-call rule makes the write visible.
  ObjectType type;
  type.name = "chainer";
  type.methods["write_then_call"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string peer)
          -> Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("state", "committed-early"));
        co_return co_await ctx.InvokeObject(peer, "observe", ctx.oid());
      }};
  type.methods["observe"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .native = [](InvocationContext& ctx, std::string target)
          -> Task<Result<std::string>> {
        // Reads the *other* object's field via a nested read-only call.
        co_return co_await ctx.InvokeObject(target, "read_state", "");
      }};
  type.methods["read_state"] = MethodImpl{
      .kind = MethodKind::kReadOnly,
      .native = [](InvocationContext& ctx, std::string)
          -> Task<Result<std::string>> { co_return co_await ctx.Get("state"); }};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("c/1", "chainer");
  Create("c/2", "chainer");
  auto r = Invoke("c/1", "write_then_call", "c/2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "committed-early");
  EXPECT_GE(runtime_->metrics().nested_invocations, 2u);
}

TEST_F(RuntimeTest, SelfInvocationRunsAsSeparateInvocation) {
  // §3.1: the nested call is a *separate* invocation; the caller's lock
  // is released around it, so even self-invocation cannot deadlock.
  ObjectType type;
  type.name = "selfie";
  type.methods["outer"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string)
          -> Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("a", "1"));
        auto inner = co_await ctx.InvokeObject(ctx.oid(), "inner", "");
        if (!inner.ok()) co_return inner.status();
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("b", "2"));
        co_return std::string("done");
      }};
  type.methods["inner"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string)
          -> Task<Result<std::string>> {
        // Sees the outer call's first write: it committed before us.
        auto a = co_await ctx.Get("a");
        if (!a.ok()) co_return Status::Aborted("outer write not visible");
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("inner_saw", *a));
        co_return std::string("inner-ok");
      }};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("s/1", "selfie");
  auto r = Invoke("s/1", "outer");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "done");
}

TEST_F(RuntimeTest, CyclicCrossObjectInvocationsDoNotDeadlock) {
  // A posts to B while B posts to A, repeatedly and concurrently.
  ObjectType type;
  type.name = "pinger";
  type.methods["ping_peer"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string peer)
          -> Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("last_sent", peer));
        co_return co_await ctx.InvokeObject(peer, "receive", ctx.oid());
      }};
  type.methods["receive"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .native = [](InvocationContext& ctx, std::string from)
          -> Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("last_from", from));
        co_return std::string("ack");
      }};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("p/a", "pinger");
  Create("p/b", "pinger");
  int done = 0;
  for (int i = 0; i < 20; i++) {
    const char* self = (i % 2 == 0) ? "p/a" : "p/b";
    const char* peer = (i % 2 == 0) ? "p/b" : "p/a";
    Detach([](Runtime* rt, std::string self, std::string peer,
              int* done) -> Task<void> {
      auto r = co_await rt->Invoke(self, "ping_peer", peer);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      (*done)++;
    }(runtime_.get(), self, peer, &done));
  }
  sim_.Run();
  EXPECT_EQ(done, 20);
}

TEST_F(RuntimeTest, VmBackedMethodEndToEnd) {
  // Counter in λasm: increments an 8-byte value field and returns it.
  auto module = vm::Assemble(R"(
data key 0 "n"
func incr export locals rc v
  push @key
  push #key
  push 64
  push 8
  kv.get
  local.set rc
  local.get rc
  push 0xffffffffffffffff
  eq
  br_if fresh
  push 64
  load64
  local.set v
fresh:
  local.get v
  push 1
  add
  local.set v
  push 64
  local.get v
  store64
  push @key
  push #key
  push 64
  push 8
  kv.put
  push 64
  push 8
  ret
end
)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ObjectType type;
  type.name = "vmcounter";
  auto shared = std::make_shared<vm::Module>(std::move(*module));
  type.methods["incr"] = MethodImpl{.kind = MethodKind::kReadWrite,
                                    .module = shared};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("vm/1", "vmcounter");
  for (uint64_t expected = 1; expected <= 3; expected++) {
    auto r = Invoke("vm/1", "incr");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->size(), 8u);
    uint64_t v = 0;
    memcpy(&v, r->data(), 8);
    EXPECT_EQ(v, expected);
  }
  EXPECT_GT(runtime_->metrics().fuel_executed, 0u);
}

TEST_F(RuntimeTest, VmTrapAbortsAtomically) {
  auto module = vm::Assemble(R"(
data key 0 "x"
func boom export
  push @key
  push #key
  push @key
  push #key
  kv.put
  push 99999999
  load64
  drop
end
)");
  ASSERT_TRUE(module.ok());
  ObjectType type;
  type.name = "trapper";
  type.methods["boom"] = MethodImpl{
      .kind = MethodKind::kReadWrite,
      .module = std::make_shared<vm::Module>(std::move(*module))};
  ASSERT_TRUE(types_.Register(std::move(type)).ok());
  Create("t/1", "trapper");
  auto r = Invoke("t/1", "boom");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTrap());
  // The kv.put before the trap must not be visible.
  EXPECT_TRUE(runtime_->StorageRead(FieldKey("t/1", "x"), nullptr)
                  .status()
                  .IsNotFound());
}

// ------------------------------------------------------------ result cache

TEST_F(RuntimeTest, CacheHitsRepeatedDeterministicReads) {
  Create("counter/a");
  ASSERT_TRUE(Invoke("counter/a", "incr", "3").ok());
  EXPECT_EQ(*Invoke("counter/a", "read"), "3");
  auto before = runtime_->cache_stats();
  EXPECT_EQ(*Invoke("counter/a", "read"), "3");
  EXPECT_EQ(*Invoke("counter/a", "read"), "3");
  auto after = runtime_->cache_stats();
  EXPECT_EQ(after.hits, before.hits + 2);
}

TEST_F(RuntimeTest, CacheInvalidatedByOverlappingWrite) {
  Create("counter/a");
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");   // populates cache
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());  // invalidates
  EXPECT_EQ(*Invoke("counter/a", "read"), "2");   // must re-execute
  auto stats = runtime_->cache_stats();
  EXPECT_GE(stats.invalidations, 1u);
}

TEST_F(RuntimeTest, CacheIsolatedPerObjectAndArgument) {
  Create("counter/a");
  Create("counter/b");
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());
  ASSERT_TRUE(Invoke("counter/b", "incr", "2").ok());
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");
  EXPECT_EQ(*Invoke("counter/b", "read"), "2");
  // Writing a must not invalidate b's cached read.
  auto before = runtime_->cache_stats();
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());
  EXPECT_EQ(*Invoke("counter/b", "read"), "2");
  auto after = runtime_->cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(ResultCacheUnit, CapacityEviction) {
  ResultCache cache(2);
  cache.Insert("k1", "v1", {{"r1", 1}});
  cache.Insert("k2", "v2", {{"r2", 1}});
  cache.Insert("k3", "v3", {{"r3", 1}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("k1").has_value());  // LRU evicted
  EXPECT_TRUE(cache.Lookup("k3").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheUnit, InvalidateOnlyAffectedEntries) {
  ResultCache cache(16);
  cache.Insert("a", "1", {{"shared", 1}, {"only-a", 2}});
  cache.Insert("b", "2", {{"shared", 1}});
  cache.Insert("c", "3", {{"only-c", 3}});
  std::vector<std::string> written = {"shared"};
  cache.InvalidateWrites(written);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().invalidations, 2u);
  // Local invalidations never count toward the replication-stream stat.
  EXPECT_EQ(cache.stats().remote_invalidations, 0u);
}

TEST(ResultCacheUnit, RemoteInvalidationsCountedSeparately) {
  ResultCache cache(16);
  cache.Insert("a", "1", {{"shared", 1}});
  cache.Insert("b", "2", {{"only-b", 2}});
  std::vector<std::string> written = {"shared"};
  cache.InvalidateWrites(written, /*remote=*/true);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().remote_invalidations, 1u);
  // A remote batch touching nothing cached drops nothing and counts nothing.
  std::vector<std::string> unrelated = {"missing"};
  cache.InvalidateWrites(unrelated, /*remote=*/true);
  EXPECT_EQ(cache.stats().remote_invalidations, 1u);
}

// A replicated batch shipped from a primary (OnExternalCommit) must
// invalidate exactly the cached reads whose read set it overwrote —
// counted as remote invalidations — and the next read re-executes
// against the applied state.
TEST_F(RuntimeTest, ExternalCommitInvalidatesOverlappingCachedReads) {
  Create("counter/a");
  Create("counter/b");
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());
  ASSERT_TRUE(Invoke("counter/b", "incr", "2").ok());
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");  // populate the cache
  EXPECT_EQ(*Invoke("counter/b", "read"), "2");

  // The primary's shipped batch overwrites a's value field.
  storage::WriteBatch batch;
  batch.Put(FieldKey("counter/a", "value"), "41");
  ASSERT_TRUE(db_->Write({.sync = true}, &batch).ok());
  auto before = runtime_->cache_stats();
  runtime_->OnExternalCommit(batch);
  auto after = runtime_->cache_stats();
  EXPECT_EQ(after.remote_invalidations, before.remote_invalidations + 1);

  // a re-executes and observes the replicated write; b's entry survived
  // and still serves from cache.
  EXPECT_EQ(*Invoke("counter/a", "read"), "41");
  auto hits_before = runtime_->cache_stats().hits;
  EXPECT_EQ(*Invoke("counter/b", "read"), "2");
  EXPECT_EQ(runtime_->cache_stats().hits, hits_before + 1);
}

// ClearResultCache (the promotion hook) drops every entry at once: no
// result cached while this node was a backup survives into its term as
// primary.
TEST_F(RuntimeTest, ClearResultCacheDropsAllEntries) {
  Create("counter/a");
  Create("counter/b");
  ASSERT_TRUE(Invoke("counter/a", "incr", "1").ok());
  ASSERT_TRUE(Invoke("counter/b", "incr", "2").ok());
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");
  EXPECT_EQ(*Invoke("counter/b", "read"), "2");
  EXPECT_GT(runtime_->result_cache_size(), 0u);
  runtime_->ClearResultCache();
  EXPECT_EQ(runtime_->result_cache_size(), 0u);
  // Reads still work (re-executed, not served from the dropped entries).
  auto hits_before = runtime_->cache_stats().hits;
  EXPECT_EQ(*Invoke("counter/a", "read"), "1");
  EXPECT_EQ(runtime_->cache_stats().hits, hits_before);
}

// Property test: concurrent mixed workload on several objects — final
// counter values must equal the number of applied increments (lost
// updates are impossible under invocation linearizability), and every
// read must return a value that was current at some point (monotonic
// per object since increments only grow).
class LinearizabilityTest : public RuntimeTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(LinearizabilityTest, NoLostUpdatesNoTimeTravel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  constexpr int kObjects = 4;
  for (int i = 0; i < kObjects; i++) Create("counter/" + std::to_string(i));

  int increments[kObjects] = {};
  int pending = 0;
  std::vector<std::pair<int, uint64_t>> reads;  // (object, observed)

  for (int step = 0; step < 200; step++) {
    int obj = static_cast<int>(rng.Uniform(kObjects));
    std::string oid = "counter/" + std::to_string(obj);
    if (rng.Bernoulli(0.6)) {
      increments[obj]++;
      pending++;
      Detach([](Runtime* rt, std::string oid, int* pending) -> Task<void> {
        auto r = co_await rt->Invoke(oid, "incr", "1");
        EXPECT_TRUE(r.ok());
        (*pending)--;
      }(runtime_.get(), oid, &pending));
    } else {
      pending++;
      Detach([](Runtime* rt, std::string oid, int obj,
                std::vector<std::pair<int, uint64_t>>* reads,
                int* pending) -> Task<void> {
        auto r = co_await rt->Invoke(oid, "read", "");
        EXPECT_TRUE(r.ok());
        if (r.ok()) reads->emplace_back(obj, std::stoull(*r));
        (*pending)--;
      }(runtime_.get(), oid, obj, &reads, &pending));
    }
    // Occasionally let the simulator drain a little to interleave.
    if (rng.Bernoulli(0.3)) sim_.RunFor(sim::Micros(rng.Uniform(50)));
  }
  sim_.Run();
  ASSERT_EQ(pending, 0);

  for (int i = 0; i < kObjects; i++) {
    EXPECT_EQ(*Invoke("counter/" + std::to_string(i), "read"),
              std::to_string(increments[i]))
        << "lost update on object " << i;
  }
  for (const auto& [obj, observed] : reads) {
    EXPECT_LE(observed, static_cast<uint64_t>(increments[obj]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizabilityTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace lo::runtime
