// Tests for the discrete-event simulator: clock, ordering, coroutines,
// network fault injection, RPC semantics, CPU contention model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/rpc.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace lo::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(Micros(30), [&] { order.push_back(3); });
  sim.After(Micros(10), [&] { order.push_back(1); });
  sim.After(Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Micros(30));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.After(Micros(10), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int fired = 0;
  sim.After(Micros(5), [&] { fired++; });
  sim.After(Micros(50), [&] { fired++; });
  sim.RunUntil(Micros(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(20));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.After(Micros(1), recurse);
  };
  sim.After(Micros(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), Micros(10));
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim(7);
    uint64_t acc = 0;
    for (int i = 0; i < 100; i++) {
      sim.After(static_cast<Duration>(sim.rng().Uniform(1000)),
                [&acc, &sim] { acc = acc * 31 + static_cast<uint64_t>(sim.Now()); });
    }
    sim.Run();
    return acc;
  };
  EXPECT_EQ(run(), run());
}

Task<int> AddLater(Simulator& sim, int a, int b) {
  co_await sim.Sleep(Micros(10));
  co_return a + b;
}

Task<int> Compose(Simulator& sim) {
  int x = co_await AddLater(sim, 1, 2);
  int y = co_await AddLater(sim, x, 10);
  co_return y;
}

TEST(Task, NestedAwaitsAccumulateVirtualTime) {
  Simulator sim;
  int result = 0;
  Detach([](Simulator& sim, int* out) -> Task<void> {
    *out = co_await Compose(sim);
  }(sim, &result));
  sim.Run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(sim.Now(), Micros(20));
}

TEST(Task, LazyUntilAwaited) {
  Simulator sim;
  bool ran = false;
  auto t = [](bool* flag) -> Task<int> {
    *flag = true;
    co_return 1;
  }(&ran);
  EXPECT_FALSE(ran);
  int out = 0;
  Detach([](Task<int> t, int* out) -> Task<void> {
    *out = co_await std::move(t);
  }(std::move(t), &out));
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(out, 1);
}

TEST(OneShot, FulfillBeforeWait) {
  Simulator sim;
  OneShot<int> slot;
  EXPECT_TRUE(slot.Fulfill(5));
  EXPECT_FALSE(slot.Fulfill(6));  // second fulfill ignored
  int out = 0;
  Detach([](OneShot<int>* s, int* out) -> Task<void> {
    *out = co_await s->Wait();
  }(&slot, &out));
  sim.Run();
  EXPECT_EQ(out, 5);
}

TEST(OneShot, FulfillAfterWaitResumes) {
  Simulator sim;
  OneShot<std::string> slot;
  std::string out;
  Detach([](OneShot<std::string>* s, std::string* out) -> Task<void> {
    *out = co_await s->Wait();
  }(&slot, &out));
  sim.After(Micros(100), [&] { slot.Fulfill("done"); });
  sim.Run();
  EXPECT_EQ(out, "done");
}


TEST(Future, StartsEagerlyAndRunsConcurrently) {
  Simulator sim;
  // Three 100us tasks through Futures: total virtual time must be 100us
  // (concurrent), not 300us (sequential, what bare lazy Tasks would do).
  auto work = [](Simulator& sim, int id) -> Task<int> {
    co_await sim.Sleep(Micros(100));
    co_return id;
  };
  int sum = 0;
  Detach([](Simulator& sim, decltype(work)& work, int* sum) -> Task<void> {
    std::vector<Future<int>> futures;
    for (int i = 1; i <= 3; i++) futures.emplace_back(work(sim, i));
    for (auto& future : futures) *sum += co_await future.Wait();
  }(sim, work, &sum));
  sim.Run();
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(sim.Now(), Micros(100));
}

TEST(Future, ResultAvailableBeforeWait) {
  Simulator sim;
  auto quick = []() -> Task<std::string> { co_return "done"; };
  Future<std::string> future(quick());
  sim.Run();
  EXPECT_TRUE(future.ready());
  std::string out;
  Detach([](Future<std::string>& f, std::string* out) -> Task<void> {
    *out = co_await f.Wait();
  }(future, &out));
  sim.Run();
  EXPECT_EQ(out, "done");
}

class NetworkTest : public ::testing::Test {
 public:
  Simulator sim_{1};
  NetworkConfig cfg_{};
  Network net_{sim_, cfg_};
};

TEST_F(NetworkTest, DeliversWithLatency) {
  std::string got;
  Time delivered_at = 0;
  net_.Register(2, [&](NodeId from, std::string payload) {
    EXPECT_EQ(from, 1u);
    got = std::move(payload);
    delivered_at = sim_.Now();
  });
  net_.Send(1, 2, "hello");
  sim_.Run();
  EXPECT_EQ(got, "hello");
  EXPECT_GE(delivered_at, cfg_.one_way_latency);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  int delivered = 0;
  net_.Register(1, [&](NodeId, std::string) { delivered++; });
  net_.Register(2, [&](NodeId, std::string) { delivered++; });
  net_.Partition(1, 2);
  net_.Send(1, 2, "a");
  net_.Send(2, 1, "b");
  sim_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.messages_dropped(), 2u);
  net_.Heal(1, 2);
  net_.Send(1, 2, "c");
  sim_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, DownNodeDropsInFlight) {
  int delivered = 0;
  net_.Register(2, [&](NodeId, std::string) { delivered++; });
  net_.Send(1, 2, "x");       // in flight
  net_.SetNodeUp(2, false);   // crashes before delivery
  sim_.Run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(NetworkTest, DropProbabilityOneDropsEverything) {
  cfg_.drop_probability = 1.0;
  Network lossy(sim_, cfg_);
  int delivered = 0;
  lossy.Register(2, [&](NodeId, std::string) { delivered++; });
  for (int i = 0; i < 20; i++) lossy.Send(1, 2, "x");
  sim_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(lossy.messages_dropped(), 20u);
}

TEST_F(NetworkTest, OneWayPartitionDropsOnlyOneDirection) {
  int at_1 = 0, at_2 = 0;
  net_.Register(1, [&](NodeId, std::string) { at_1++; });
  net_.Register(2, [&](NodeId, std::string) { at_2++; });
  net_.PartitionOneWay(1, 2);
  net_.Send(1, 2, "a");  // swallowed by the partition
  net_.Send(2, 1, "b");  // reverse direction still flows
  sim_.Run();
  EXPECT_EQ(at_2, 0);
  EXPECT_EQ(at_1, 1);
  EXPECT_EQ(net_.fault_drops(), 1u);
  // Heal is symmetric: it clears the directed edge too.
  net_.Heal(1, 2);
  net_.Send(1, 2, "c");
  sim_.Run();
  EXPECT_EQ(at_2, 1);
}

TEST_F(NetworkTest, DelaySpikesDelayButStillDeliver) {
  net_.SetFaults({.drop_probability = 0, .spike_probability = 1.0,
                  .spike_mean = Millis(5)});
  int delivered = 0;
  Time last = 0;
  net_.Register(2, [&](NodeId, std::string) {
    delivered++;
    last = sim_.Now();
  });
  for (int i = 0; i < 10; i++) net_.Send(1, 2, "x");
  sim_.Run();
  EXPECT_EQ(delivered, 10);  // spikes never lose messages
  EXPECT_EQ(net_.delay_spikes(), 10u);
  EXPECT_GT(last, cfg_.one_way_latency);  // and they genuinely slow things
}

TEST_F(NetworkTest, FaultScheduleIsSeededAndReplayable) {
  // Drops and spikes draw from the simulator's seeded RNG: the same seed
  // must produce the identical fault schedule (which messages die, when
  // survivors arrive), so every degraded-mode run can be replayed.
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    Network net(sim, NetworkConfig{});
    net.SetFaults({.drop_probability = 0.3, .spike_probability = 0.2,
                   .spike_mean = Millis(1)});
    std::vector<Time> deliveries;
    net.Register(2, [&](NodeId, std::string) { deliveries.push_back(sim.Now()); });
    for (int i = 0; i < 50; i++) net.Send(1, 2, "m");
    sim.Run();
    return std::make_tuple(deliveries, net.fault_drops(), net.delay_spikes());
  };
  auto first = run(11);
  EXPECT_EQ(first, run(11));
  EXPECT_GT(std::get<1>(first), 0u);
  EXPECT_GT(std::get<2>(first), 0u);
  EXPECT_NE(std::get<0>(first), std::get<0>(run(12)));  // seed matters
}

class RpcTest : public ::testing::Test {
 public:
  RpcTest() : server_(net_, 1), client_(net_, 2) {
    server_.Handle("echo", [](NodeId, std::string payload)
                       -> Task<Result<std::string>> {
      co_return payload;
    });
    server_.Handle("fail", [](NodeId, std::string) -> Task<Result<std::string>> {
      co_return Status::Aborted("nope");
    });
  }

  Simulator sim_{2};
  Network net_{sim_, NetworkConfig{}};
  RpcEndpoint server_;
  RpcEndpoint client_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  Result<std::string> result = Status::Unavailable("not run");
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "echo", "ping", Millis(100));
  }(this, &result));
  sim_.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "ping");
  // One round trip: at least 2x one-way latency.
  EXPECT_GE(sim_.Now(), 2 * NetworkConfig{}.one_way_latency);
}

TEST_F(RpcTest, HandlerErrorPropagates) {
  Result<std::string> result{std::string()};
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "fail", "", Millis(100));
  }(this, &result));
  sim_.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST_F(RpcTest, UnknownServiceReturnsNotFound) {
  Result<std::string> result = std::string();
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "bogus", "", Millis(100));
  }(this, &result));
  sim_.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(RpcTest, TimeoutWhenServerUnreachable) {
  net_.SetNodeUp(1, false);
  Result<std::string> result = std::string();
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "echo", "ping", Millis(5));
  }(this, &result));
  sim_.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
  EXPECT_EQ(client_.timeouts(), 1u);
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsIgnored) {
  // Server handler sleeps longer than the client timeout.
  server_.Handle("slow", [this](NodeId, std::string) -> Task<Result<std::string>> {
    co_await sim_.Sleep(Millis(50));
    co_return std::string("late");
  });
  Result<std::string> result = std::string();
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "slow", "", Millis(5));
  }(this, &result));
  sim_.Run();  // runs past the late response arriving
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
}

TEST_F(RpcTest, ManyConcurrentCallsMatchResponses) {
  constexpr int kCalls = 50;
  std::vector<std::string> results(kCalls);
  for (int i = 0; i < kCalls; i++) {
    Detach([](RpcTest* t, int i, std::string* out) -> Task<void> {
      auto r = co_await t->client_.Call(1, "echo", "msg" + std::to_string(i),
                                        Millis(100));
      if (r.ok()) *out = *r;
    }(this, i, &results[i]));
  }
  sim_.Run();
  for (int i = 0; i < kCalls; i++) {
    EXPECT_EQ(results[i], "msg" + std::to_string(i));
  }
}

TEST_F(RpcTest, CorruptFrameIsRejectedNotDispatched) {
  // The sim transport now speaks the CRC-checked net/frame.h wire format.
  // A frame corrupted in flight must be counted and dropped — never
  // dispatched, never a crash. The caller simply times out, exactly like
  // a datagram loss.
  bool handler_ran = false;
  server_.Handle("echo", [&handler_ran](NodeId, std::string payload)
                     -> Task<Result<std::string>> {
    handler_ran = true;
    co_return payload;
  });
  net::RequestFrame request;
  request.rpc_id = 1;
  request.service = "echo";
  request.payload = "ping";
  std::string wire = net::EncodeRequest(request);
  wire[wire.size() - 1] ^= 0x01;  // flip one payload bit in flight
  net_.Send(2, 1, std::move(wire));
  sim_.Run();
  EXPECT_EQ(server_.frame_rejects(), 1u);
  EXPECT_FALSE(handler_ran);
}

TEST_F(RpcTest, ExpiredRequestShedAtServerWithoutExecuting) {
  // Client timeout (50µs) below the one-way network latency (60µs): the
  // request reaches the server already expired, so the server sheds it —
  // the handler must NOT run (the work would be wasted; in the sim this
  // also models load-shedding under queueing delay).
  bool handler_ran = false;
  server_.Handle("echo", [&handler_ran](NodeId, std::string payload)
                     -> Task<Result<std::string>> {
    handler_ran = true;
    co_return payload;
  });
  Result<std::string> result = std::string();
  Detach([](RpcTest* t, Result<std::string>* out) -> Task<void> {
    *out = co_await t->client_.Call(1, "echo", "ping", Micros(50));
  }(this, &result));
  sim_.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
  EXPECT_EQ(server_.deadline_sheds(), 1u);
  EXPECT_FALSE(handler_ran);
}

TEST(Cpu, SerializesBeyondCapacity) {
  Simulator sim;
  CpuModel cpu(sim, 2);
  std::vector<Time> finish;
  for (int i = 0; i < 4; i++) {
    Detach([](Simulator& sim, CpuModel& cpu, std::vector<Time>* finish)
               -> Task<void> {
      co_await cpu.Execute(Micros(100));
      finish->push_back(sim.Now());
    }(sim, cpu, &finish));
  }
  sim.Run();
  ASSERT_EQ(finish.size(), 4u);
  // 2 cores, 4 jobs of 100us: two waves.
  EXPECT_EQ(finish[0], Micros(100));
  EXPECT_EQ(finish[1], Micros(100));
  EXPECT_EQ(finish[2], Micros(200));
  EXPECT_EQ(finish[3], Micros(200));
  EXPECT_EQ(cpu.busy_core_ns(), 4 * Micros(100));
}

TEST(Cpu, FifoOrderAmongWaiters) {
  Simulator sim;
  CpuModel cpu(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; i++) {
    Detach([](CpuModel& cpu, std::vector<int>* order, int i) -> Task<void> {
      co_await cpu.Execute(Micros(10));
      order->push_back(i);
    }(cpu, &order, i));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Cpu, ZeroWorkStillCounts) {
  Simulator sim;
  CpuModel cpu(sim, 1);
  bool done = false;
  Detach([](CpuModel& cpu, bool* done) -> Task<void> {
    co_await cpu.Execute(0);
    *done = true;
  }(cpu, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace lo::sim
