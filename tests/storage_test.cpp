// MiniLSM tests: WAL, memtable, blocks, bloom, SSTables, versions, and
// the DB facade (recovery, snapshots, iterators, compaction), plus a
// randomized model check against std::map with crash/reopen injection.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/bloom.h"
#include "storage/block.h"
#include "storage/db.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/faulty_env.h"
#include "storage/filename.h"
#include "storage/group_commit.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace lo::storage {
namespace {

// ------------------------------------------------------------------- Env

TEST(MemEnv, WriteReadRoundTrip) {
  MemEnv env;
  ASSERT_TRUE(env.WriteStringToFile("/f", "hello", true).ok());
  auto got = env.ReadFileToString("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
  EXPECT_TRUE(env.FileExists("/f"));
  EXPECT_EQ(*env.FileSize("/f"), 5u);
}

TEST(MemEnv, DeleteKeepsOpenHandlesAlive) {
  MemEnv env;
  ASSERT_TRUE(env.WriteStringToFile("/f", "payload", true).ok());
  auto file = env.NewRandomAccessFile("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(env.DeleteFile("/f").ok());
  EXPECT_FALSE(env.FileExists("/f"));
  std::string out;
  ASSERT_TRUE((*file)->Read(0, 7, &out).ok());
  EXPECT_EQ(out, "payload");  // unlink semantics
}

TEST(MemEnv, RenameReplaces) {
  MemEnv env;
  ASSERT_TRUE(env.WriteStringToFile("/a", "one", true).ok());
  ASSERT_TRUE(env.WriteStringToFile("/b", "two", true).ok());
  ASSERT_TRUE(env.RenameFile("/a", "/b").ok());
  EXPECT_FALSE(env.FileExists("/a"));
  EXPECT_EQ(*env.ReadFileToString("/b"), "one");
}

TEST(MemEnv, ListDirReturnsDirectChildrenOnly) {
  MemEnv env;
  ASSERT_TRUE(env.WriteStringToFile("/db/a", "x", true).ok());
  ASSERT_TRUE(env.WriteStringToFile("/db/b", "x", true).ok());
  ASSERT_TRUE(env.WriteStringToFile("/db/sub/c", "x", true).ok());
  ASSERT_TRUE(env.WriteStringToFile("/other/d", "x", true).ok());
  auto names = env.ListDir("/db");
  ASSERT_TRUE(names.ok());
  std::sort(names->begin(), names->end());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

TEST(MemEnv, DropUnsyncedDataTruncatesToSyncPoint) {
  MemEnv env;
  auto file = env.NewWritableFile("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("synced").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("lost").ok());
  env.DropUnsyncedData();
  EXPECT_EQ(*env.ReadFileToString("/f"), "synced");
}


TEST(PosixEnvTest, RealFilesystemRoundTrip) {
  PosixEnv env;
  std::string dir = "/tmp/lo_posix_env_test";
  ASSERT_TRUE(env.CreateDir(dir).ok());
  std::string path = dir + "/file";
  ASSERT_TRUE(env.WriteStringToFile(path, "posix-data", true).ok());
  EXPECT_TRUE(env.FileExists(path));
  EXPECT_EQ(*env.FileSize(path), 10u);
  EXPECT_EQ(*env.ReadFileToString(path), "posix-data");
  // Positional reads.
  auto file = env.NewRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  std::string out;
  ASSERT_TRUE((*file)->Read(6, 4, &out).ok());
  EXPECT_EQ(out, "data");
  // Rename + list + delete.
  ASSERT_TRUE(env.RenameFile(path, dir + "/renamed").ok());
  auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "renamed");
  ASSERT_TRUE(env.DeleteFile(dir + "/renamed").ok());
  EXPECT_FALSE(env.FileExists(dir + "/renamed"));
}

TEST(PosixEnvTest, WholeDbOnRealFilesystem) {
  // MiniLSM end-to-end on the real filesystem (examples/tools use this).
  PosixEnv env;
  std::string dir = "/tmp/lo_posix_db_test";
  (void)env.CreateDir(dir);
  // Clean leftovers from previous runs.
  if (auto names = env.ListDir(dir); names.ok()) {
    for (const auto& name : *names) (void)env.DeleteFile(dir + "/" + name);
  }
  Options options;
  options.env = &env;
  {
    auto db = DB::Open(options, dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put({}, "persist", "on-disk").ok());
  }
  auto db = DB::Open(options, dir);
  ASSERT_TRUE(db.ok());
  auto got = (*db)->Get({}, "persist");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "on-disk");
}

// ------------------------------------------------------------------- WAL

TEST(Wal, SmallRecordsRoundTrip) {
  MemEnv env;
  {
    wal::Writer writer(std::move(*env.NewWritableFile("/log")));
    ASSERT_TRUE(writer.AddRecord("one").ok());
    ASSERT_TRUE(writer.AddRecord("two").ok());
    ASSERT_TRUE(writer.AddRecord("").ok());  // empty record is legal
    ASSERT_TRUE(writer.Sync().ok());
  }
  wal::LogReader reader(std::move(*env.NewSequentialFile("/log")));
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, "one");
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, "two");
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, "");
  EXPECT_FALSE(reader.ReadRecord(&rec));
  EXPECT_FALSE(reader.hit_corruption());
}

TEST(Wal, LargeRecordSpansBlocks) {
  MemEnv env;
  Rng rng(1);
  std::string big = rng.Bytes(100000);  // ~3 blocks
  {
    wal::Writer writer(std::move(*env.NewWritableFile("/log")));
    ASSERT_TRUE(writer.AddRecord(big).ok());
    ASSERT_TRUE(writer.AddRecord("tail").ok());
  }
  wal::LogReader reader(std::move(*env.NewSequentialFile("/log")));
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, big);
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, "tail");
}

TEST(Wal, ManySizesRoundTrip) {
  MemEnv env;
  Rng rng(2);
  std::vector<std::string> records;
  {
    wal::Writer writer(std::move(*env.NewWritableFile("/log")));
    for (int i = 0; i < 200; i++) {
      records.push_back(rng.Bytes(rng.Uniform(3000)));
      ASSERT_TRUE(writer.AddRecord(records.back()).ok());
    }
  }
  wal::LogReader reader(std::move(*env.NewSequentialFile("/log")));
  std::string rec;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.ReadRecord(&rec));
    ASSERT_EQ(rec, expected);
  }
  EXPECT_FALSE(reader.ReadRecord(&rec));
}

TEST(Wal, DetectsCorruptedRecord) {
  MemEnv env;
  {
    wal::Writer writer(std::move(*env.NewWritableFile("/log")));
    ASSERT_TRUE(writer.AddRecord("record-one").ok());
  }
  // Flip a payload byte.
  auto data = *env.ReadFileToString("/log");
  data[10] ^= 0x40;
  ASSERT_TRUE(env.WriteStringToFile("/log", data, true).ok());
  wal::LogReader reader(std::move(*env.NewSequentialFile("/log")));
  std::string rec;
  EXPECT_FALSE(reader.ReadRecord(&rec));
  EXPECT_TRUE(reader.hit_corruption());
}

TEST(Wal, TornTailStopsCleanly) {
  MemEnv env;
  {
    wal::Writer writer(std::move(*env.NewWritableFile("/log")));
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord(std::string(500, 'x')).ok());
  }
  auto data = *env.ReadFileToString("/log");
  data.resize(data.size() - 300);  // tear the second record
  ASSERT_TRUE(env.WriteStringToFile("/log", data, true).ok());
  wal::LogReader reader(std::move(*env.NewSequentialFile("/log")));
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ(rec, "complete");
  EXPECT_FALSE(reader.ReadRecord(&rec));
}

// -------------------------------------------------------------- MemTable

TEST(MemTable, AddGetNewestVersionWins) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(2, ValueType::kValue, "k", "v2");
  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get("k", kMaxSequenceNumber, &value, &s));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "v2");
  // Read at snapshot seq=1 sees the old version.
  ASSERT_TRUE(mem.Get("k", 1, &value, &s));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "v1");
}

TEST(MemTable, DeletionIsVisibleAsTombstone) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v");
  mem.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get("k", kMaxSequenceNumber, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(MemTable, MissingKeyNotFoundInTable) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "aaa", "v");
  std::string value;
  Status s;
  EXPECT_FALSE(mem.Get("zzz", kMaxSequenceNumber, &value, &s));
  EXPECT_FALSE(mem.Get("aa", kMaxSequenceNumber, &value, &s));
}

TEST(MemTable, IteratorSortedByInternalKey) {
  MemTable mem;
  mem.Add(3, ValueType::kValue, "b", "b3");
  mem.Add(1, ValueType::kValue, "a", "a1");
  mem.Add(2, ValueType::kValue, "b", "b2");
  auto iter = mem.NewIterator();
  std::vector<std::pair<std::string, uint64_t>> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    seen.emplace_back(std::string(parsed.user_key), parsed.sequence);
  }
  // user keys ascending, seq descending within a key.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"b", 3}));
  EXPECT_EQ(seen[2], (std::pair<std::string, uint64_t>{"b", 2}));
}

TEST(MemTable, ManyEntriesStaySorted) {
  MemTable mem;
  Rng rng(5);
  for (int i = 0; i < 2000; i++) {
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue,
            "key" + std::to_string(rng.Uniform(500)), "v");
  }
  auto iter = mem.NewIterator();
  InternalKeyComparator icmp;
  std::string prev;
  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (!prev.empty()) ASSERT_LT(icmp.Compare(prev, iter->key()), 0);
    prev.assign(iter->key());
    n++;
  }
  EXPECT_EQ(n, 2000);
}

// ----------------------------------------------------------------- Block

TEST(Block, BuildAndScan) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 50; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%04d", i);
    entries.emplace_back(MakeInternalKey(key, 1, ValueType::kValue),
                         "value" + std::to_string(i));
    builder.Add(entries.back().first, entries.back().second);
  }
  auto block = Block::Parse(std::string(builder.Finish()));
  ASSERT_TRUE(block.ok());
  InternalKeyComparator icmp;
  auto iter = (*block)->NewIterator(&icmp);
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(iter->key(), entries[i].first);
    EXPECT_EQ(iter->value(), entries[i].second);
  }
  EXPECT_EQ(i, entries.size());
}

TEST(Block, SeekLandsOnOrAfterTarget) {
  BlockBuilder builder(3);
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[32];
    std::snprintf(key, sizeof(key), "k%04d", i);
    builder.Add(MakeInternalKey(key, 1, ValueType::kValue), std::to_string(i));
  }
  auto block = Block::Parse(std::string(builder.Finish()));
  ASSERT_TRUE(block.ok());
  InternalKeyComparator icmp;
  auto iter = (*block)->NewIterator(&icmp);
  // Seek to odd key 51 -> lands on 52.
  iter->Seek(MakeInternalKey("k0051", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value(), "52");
  // Seek past the end -> invalid.
  iter->Seek(MakeInternalKey("k9999", kMaxSequenceNumber, kValueTypeForSeek));
  EXPECT_FALSE(iter->Valid());
  // Seek before the start -> first entry.
  iter->Seek(MakeInternalKey("", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value(), "0");
}

TEST(Block, RejectsTruncated) {
  EXPECT_FALSE(Block::Parse("ab").ok());
  EXPECT_FALSE(Block::Parse(std::string("\0\0\0\0", 4)).ok());  // 0 restarts
}

// ----------------------------------------------------------------- Bloom

TEST(Bloom, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back("bloomkey" + std::to_string(i * 7));
    builder.AddKey(keys.back());
  }
  std::string filter = builder.Finish();
  for (const auto& key : keys) {
    EXPECT_TRUE(BloomFilterMayContain(filter, key)) << key;
  }
}

TEST(Bloom, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; i++) builder.AddKey("present" + std::to_string(i));
  std::string filter = builder.Finish();
  int fp = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; i++) {
    if (BloomFilterMayContain(filter, "absent" + std::to_string(i))) fp++;
  }
  EXPECT_LT(fp, kProbes * 0.03);  // ~1% expected at 10 bits/key
}

TEST(Bloom, EmptyOrMalformedFilterNeverRejects) {
  EXPECT_TRUE(BloomFilterMayContain("", "anything"));
  EXPECT_TRUE(BloomFilterMayContain("\x7f", "anything"));
}

// --------------------------------------------------------------- SSTable

class SSTableTest : public ::testing::Test {
 public:
  // Builds a table with keys k0000..k(n-1), value = "v<i>".
  void Build(int n, int step = 1) {
    TableBuilder builder(TableOptions{.block_size = 256},
                         std::move(*env_.NewWritableFile("/t.ldb")));
    for (int i = 0; i < n; i += step) {
      char key[32];
      std::snprintf(key, sizeof(key), "k%04d", i);
      builder.Add(MakeInternalKey(key, 1, ValueType::kValue),
                  "v" + std::to_string(i));
    }
    ASSERT_TRUE(builder.Finish().ok());
    auto file = env_.NewRandomAccessFile("/t.ldb");
    ASSERT_TRUE(file.ok());
    auto table = Table::Open(std::shared_ptr<RandomAccessFile>(std::move(*file)));
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    table_ = *table;
  }

  MemEnv env_;
  std::shared_ptr<Table> table_;
};

TEST_F(SSTableTest, FullScanSeesEveryEntry) {
  Build(500);
  auto iter = table_->NewIterator();
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    char key[32];
    std::snprintf(key, sizeof(key), "k%04d", i);
    EXPECT_EQ(parsed.user_key, key);
    EXPECT_EQ(iter->value(), "v" + std::to_string(i));
  }
  EXPECT_EQ(i, 500);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(SSTableTest, PointLookups) {
  Build(500, 2);  // even keys
  for (int probe : {0, 2, 250, 498}) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%04d", probe);
    std::string lookup = MakeInternalKey(key, kMaxSequenceNumber, kValueTypeForSeek);
    bool found = false;
    ASSERT_TRUE(table_
                    ->InternalGet(lookup,
                                  [&](std::string_view ikey, std::string_view v) {
                                    ParsedInternalKey parsed;
                                    ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
                                    if (parsed.user_key == key) {
                                      found = true;
                                      EXPECT_EQ(v, "v" + std::to_string(probe));
                                    }
                                  })
                    .ok());
    EXPECT_TRUE(found) << probe;
  }
  // Absent (odd) key must not produce a match.
  std::string lookup = MakeInternalKey("k0251", kMaxSequenceNumber, kValueTypeForSeek);
  bool wrong = false;
  ASSERT_TRUE(table_
                  ->InternalGet(lookup,
                                [&](std::string_view ikey, std::string_view) {
                                  ParsedInternalKey parsed;
                                  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
                                  if (parsed.user_key == "k0251") wrong = true;
                                })
                  .ok());
  EXPECT_FALSE(wrong);
}

TEST_F(SSTableTest, SeekAcrossBlocks) {
  Build(1000);
  auto iter = table_->NewIterator();
  iter->Seek(MakeInternalKey("k0500", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value(), "v500");
  // Continue scanning across block boundaries.
  for (int i = 501; i < 520; i++) {
    iter->Next();
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value(), "v" + std::to_string(i));
  }
}

TEST_F(SSTableTest, CorruptBlockDetected) {
  Build(500);
  auto data = *env_.ReadFileToString("/t.ldb");
  data[100] ^= 0x01;  // flip a bit inside the first data block
  ASSERT_TRUE(env_.WriteStringToFile("/t.ldb", data, true).ok());
  auto file = env_.NewRandomAccessFile("/t.ldb");
  auto table = Table::Open(std::shared_ptr<RandomAccessFile>(std::move(*file)));
  ASSERT_TRUE(table.ok());  // metadata blocks are at the end, still intact
  std::string lookup = MakeInternalKey("k0000", kMaxSequenceNumber, kValueTypeForSeek);
  Status s = (*table)->InternalGet(lookup, [](std::string_view, std::string_view) {});
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(SSTableTest, OpenRejectsBadMagic) {
  Build(10);
  auto data = *env_.ReadFileToString("/t.ldb");
  data[data.size() - 1] ^= 0xff;
  ASSERT_TRUE(env_.WriteStringToFile("/t.ldb", data, true).ok());
  auto file = env_.NewRandomAccessFile("/t.ldb");
  auto table = Table::Open(std::shared_ptr<RandomAccessFile>(std::move(*file)));
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption());
}

// ------------------------------------------------------------ WriteBatch

TEST(WriteBatchTest, CountAndIterate) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3u);
  struct Collector : WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(std::string_view k, std::string_view v) override {
      ops.push_back("put:" + std::string(k) + "=" + std::string(v));
    }
    void Delete(std::string_view k) override {
      ops.push_back("del:" + std::string(k));
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  EXPECT_EQ(collector.ops,
            (std::vector<std::string>{"put:a=1", "del:b", "put:c=3"}));
}

TEST(WriteBatchTest, RepRoundTrip) {
  WriteBatch batch;
  batch.Put("key", "value");
  batch.Delete("gone");
  batch.SetSequence(1234);
  auto parsed = WriteBatch::FromRep(batch.rep());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Count(), 2u);
  EXPECT_EQ(parsed->sequence(), 1234u);
}

TEST(WriteBatchTest, FromRepRejectsGarbage) {
  EXPECT_FALSE(WriteBatch::FromRep("short").ok());
  std::string bad(12, '\0');
  bad[8] = 5;  // claims 5 records, has none
  EXPECT_FALSE(WriteBatch::FromRep(bad).ok());
}

TEST(WriteBatchTest, AppendMergesBatches) {
  WriteBatch a, b;
  a.Put("x", "1");
  b.Put("y", "2");
  b.Delete("z");
  a.Append(b);
  EXPECT_EQ(a.Count(), 3u);
}

// ----------------------------------------------------------------- DB

class DBTest : public ::testing::Test {
 public:
  DBTest() { Reopen(); }

  void Reopen() {
    db_.reset();
    Options options;
    options.env = &env_;
    options.write_buffer_size = write_buffer_size_;
    auto db = DB::Open(options, "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void Crash() {
    db_.reset();
    env_.DropUnsyncedData();
    Reopen();
  }

  std::string Get(std::string_view key) {
    auto r = db_->Get({}, key);
    return r.ok() ? *r : "(" + r.status().ToString() + ")";
  }

  MemEnv env_;
  size_t write_buffer_size_ = 1 << 20;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, PutGetDelete) {
  ASSERT_TRUE(db_->Put({}, "k1", "v1").ok());
  EXPECT_EQ(Get("k1"), "v1");
  EXPECT_EQ(Get("missing"), "(NotFound)");
  ASSERT_TRUE(db_->Delete({}, "k1").ok());
  EXPECT_EQ(Get("k1"), "(NotFound)");
}

TEST_F(DBTest, OverwriteReturnsLatest) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, "k", "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(Get("k"), "v99");
}

TEST_F(DBTest, BatchIsAtomicallyVisible) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  EXPECT_EQ(Get("a"), "(NotFound)");
  EXPECT_EQ(Get("b"), "2");
}

TEST_F(DBTest, SurvivesCleanReopen) {
  ASSERT_TRUE(db_->Put({}, "persist", "yes").ok());
  Reopen();
  EXPECT_EQ(Get("persist"), "yes");
}

TEST_F(DBTest, SurvivesCrashAfterSyncedWrites) {
  ASSERT_TRUE(db_->Put({.sync = true}, "durable", "1").ok());
  ASSERT_TRUE(db_->Put({.sync = true}, "durable2", "2").ok());
  Crash();
  EXPECT_EQ(Get("durable"), "1");
  EXPECT_EQ(Get("durable2"), "2");
}

TEST_F(DBTest, UnsyncedWritesMayVanishButPrefixSurvives) {
  ASSERT_TRUE(db_->Put({.sync = true}, "synced", "1").ok());
  ASSERT_TRUE(db_->Put({.sync = false}, "unsynced", "2").ok());
  Crash();
  EXPECT_EQ(Get("synced"), "1");
  EXPECT_EQ(Get("unsynced"), "(NotFound)");
}

TEST_F(DBTest, FlushAndCompactionPreserveData) {
  write_buffer_size_ = 4 << 10;  // tiny: force many flushes
  Reopen();
  Rng rng(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(400));
    std::string value = "val" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(db_->Put({.sync = false}, key, value).ok());
  }
  auto stats = db_->GetStats();
  EXPECT_GT(stats.flushes, 0u);
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(key), value) << key;
  }
}

TEST_F(DBTest, CompactAllMovesEverythingDown) {
  write_buffer_size_ = 4 << 10;
  Reopen();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({.sync = false}, "k" + std::to_string(i),
                         std::string(50, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  auto stats = db_->GetStats();
  EXPECT_EQ(stats.files_per_level[0], 0);
  int nonzero_levels = 0;
  for (int l = 1; l < kNumLevels; l++) {
    if (stats.files_per_level[l] > 0) nonzero_levels++;
  }
  EXPECT_GE(nonzero_levels, 1);
  for (int i = 0; i < 2000; i += 97) {
    EXPECT_EQ(Get("k" + std::to_string(i)), std::string(50, 'v'));
  }
}

TEST_F(DBTest, SnapshotIsolatesReads) {
  ASSERT_TRUE(db_->Put({}, "k", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "new").ok());
  ASSERT_TRUE(db_->Delete({}, "other").ok());
  auto at_snap = db_->Get({.snapshot = snap}, "k");
  ASSERT_TRUE(at_snap.ok());
  EXPECT_EQ(*at_snap, "old");
  EXPECT_EQ(Get("k"), "new");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndCompaction) {
  write_buffer_size_ = 4 << 10;
  Reopen();
  ASSERT_TRUE(db_->Put({}, "pinned", "v0").ok());
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({.sync = false}, "pinned", "v" + std::to_string(i)).ok());
    ASSERT_TRUE(db_->Put({.sync = false}, "fill" + std::to_string(i),
                         std::string(40, 'x'))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  auto at_snap = db_->Get({.snapshot = snap}, "pinned");
  ASSERT_TRUE(at_snap.ok());
  EXPECT_EQ(*at_snap, "v0");
  db_->ReleaseSnapshot(snap);
  EXPECT_EQ(Get("pinned"), "v1999");
}

TEST_F(DBTest, IteratorScansSortedLiveKeys) {
  ASSERT_TRUE(db_->Put({}, "c", "3").ok());
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  ASSERT_TRUE(db_->Delete({}, "b").ok());
  auto iter = db_->NewIterator({});
  std::vector<std::string> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    seen.push_back(std::string(iter->key()) + "=" + std::string(iter->value()));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"a=1", "c=3"}));
}

TEST_F(DBTest, IteratorSeekPrefixScan) {
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db_->Put({}, "user/" + std::to_string(100 + i), "u").ok());
  }
  ASSERT_TRUE(db_->Put({}, "post/1", "p").ok());
  auto iter = db_->NewIterator({});
  int count = 0;
  for (iter->Seek("user/"); iter->Valid() && iter->key().substr(0, 5) == "user/";
       iter->Next()) {
    count++;
  }
  EXPECT_EQ(count, 20);
}

TEST_F(DBTest, IteratorMergesMemtableAndTables) {
  write_buffer_size_ = 4 << 10;
  Reopen();
  // Old version flushed to disk, new version in memtable.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put({.sync = false}, "dup", "old" + std::to_string(i)).ok());
    ASSERT_TRUE(db_->Put({.sync = false}, "f" + std::to_string(i),
                         std::string(30, 'x'))
                    .ok());
  }
  ASSERT_TRUE(db_->Put({}, "dup", "newest").ok());
  auto iter = db_->NewIterator({});
  iter->Seek("dup");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), "dup");
  EXPECT_EQ(iter->value(), "newest");
}

TEST_F(DBTest, CreateIfMissingFalseFailsOnFreshDir) {
  Options options;
  options.env = &env_;
  options.create_if_missing = false;
  auto db = DB::Open(options, "/nonexistent");
  EXPECT_FALSE(db.ok());
}

TEST_F(DBTest, StatsTrackActivity) {
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  (void)db_->Get({}, "a");
  auto stats = db_->GetStats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_GT(stats.wal_syncs, 0u);
}


// ------------------------------------------------------------- filenames

TEST(Filename, FormatAndParseRoundTrip) {
  uint64_t number = 0;
  EXPECT_EQ(ParseFileName("CURRENT", &number), FileKind::kCurrent);
  EXPECT_EQ(ParseFileName("MANIFEST-000007", &number), FileKind::kManifest);
  EXPECT_EQ(number, 7u);
  EXPECT_EQ(ParseFileName("000042.log", &number), FileKind::kWal);
  EXPECT_EQ(number, 42u);
  EXPECT_EQ(ParseFileName("000099.ldb", &number), FileKind::kTable);
  EXPECT_EQ(number, 99u);
  EXPECT_EQ(ParseFileName("junk.txt", &number), FileKind::kUnknown);
  EXPECT_EQ(ParseFileName("x42.log", &number), FileKind::kUnknown);
  EXPECT_EQ(ParseFileName("", &number), FileKind::kUnknown);

  // The generators produce names the parser accepts.
  EXPECT_EQ(TableFileName("/db", 3), "/db/000003.ldb");
  EXPECT_EQ(WalFileName("/db", 12), "/db/000012.log");
  EXPECT_EQ(ManifestFileName("/db", 1), "/db/MANIFEST-000001");
}

// ---------------------------------------------------- compaction details

TEST_F(DBTest, TombstonesAreCollectedAtBottomLevel) {
  write_buffer_size_ = 4 << 10;
  Reopen();
  // Write then delete everything; after full compaction the tombstones
  // have nothing to shadow and must be gone from the table files.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put({.sync = false}, "k" + std::to_string(i),
                         std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Delete({.sync = false}, "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  auto stats = db_->GetStats();
  uint64_t total_bytes = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_bytes += stats.bytes_per_level[level];
  }
  // All user data was deleted; the residual footprint must be tiny
  // (block/index scaffolding only).
  EXPECT_LT(total_bytes, 4096u);
  auto iter = db_->NewIterator({});
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(DBTest, OverwrittenVersionsReclaimedByCompaction) {
  write_buffer_size_ = 4 << 10;
  Reopen();
  std::string value(512, 'x');
  for (int round = 0; round < 40; round++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db_->Put({.sync = false}, "hot" + std::to_string(i), value).ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  auto stats = db_->GetStats();
  uint64_t total_bytes = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_bytes += stats.bytes_per_level[level];
  }
  // 50 live keys x ~520 bytes ~ 26 KB; 40 versions each would be ~1 MB.
  EXPECT_LT(total_bytes, 100u << 10);
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(Get("hot" + std::to_string(i)), value);
  }
}

TEST_F(DBTest, ManifestCompactsAcrossReopen) {
  // Repeated reopens must not lose the file layout.
  write_buffer_size_ = 4 << 10;
  Reopen();
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(db_->Put({.sync = false},
                           "r" + std::to_string(round) + "k" + std::to_string(i),
                           std::string(40, 'd')).ok());
    }
    Reopen();
  }
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 300; i += 37) {
      EXPECT_EQ(Get("r" + std::to_string(round) + "k" + std::to_string(i)),
                std::string(40, 'd'));
    }
  }
}

TEST_F(DBTest, LargeValuesSurviveEverything) {
  write_buffer_size_ = 64 << 10;
  Reopen();
  Rng rng(21);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 20; i++) {
    std::string key = "big" + std::to_string(i);
    std::string value = rng.Bytes(20000 + rng.Uniform(50000));
    model[key] = value;
    ASSERT_TRUE(db_->Put({.sync = true}, key, value).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  Crash();
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(key), value) << key;
  }
}

TEST_F(DBTest, EmptyBatchIsANoop) {
  WriteBatch batch;
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  EXPECT_EQ(db_->LastSequence(), 0u);
}

TEST_F(DBTest, BinaryKeysAndValues) {
  // Keys with NULs and high bytes (the runtime's key layout uses NUL
  // separators, so this path is load-bearing).
  std::string key1("f\0user/1\0fl", 11);
  std::string key2("f\0user/1\0tl", 11);
  Rng rng(31);
  std::string value = rng.Bytes(256);
  ASSERT_TRUE(db_->Put({}, key1, value).ok());
  ASSERT_TRUE(db_->Put({}, key2, "x").ok());
  auto got = db_->Get({}, key1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
  Reopen();
  EXPECT_EQ(*db_->Get({}, key1), value);
  EXPECT_EQ(*db_->Get({}, key2), "x");
}

// ------------------------------------------------------------ Block cache

// MemEnv that counts positional reads: with the block cache warm, the hot
// read path must not touch the Env at all.
class CountingEnv : public MemEnv {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    auto base = MemEnv::NewRandomAccessFile(path);
    if (!base.ok()) return base.status();
    return {std::make_unique<CountingFile>(std::move(*base), &random_reads_)};
  }

  uint64_t random_reads() const { return random_reads_.load(); }

 private:
  class CountingFile : public RandomAccessFile {
   public:
    CountingFile(std::unique_ptr<RandomAccessFile> base,
                 std::atomic<uint64_t>* reads)
        : base_(std::move(base)), reads_(reads) {}
    Status Read(uint64_t offset, size_t n, std::string* out) const override {
      reads_->fetch_add(1);
      return base_->Read(offset, n, out);
    }
    uint64_t Size() const override { return base_->Size(); }

   private:
    std::unique_ptr<RandomAccessFile> base_;
    std::atomic<uint64_t>* reads_;
  };

  std::atomic<uint64_t> random_reads_{0};
};

class BlockCacheTest : public ::testing::Test {
 public:
  void Open(size_t block_cache_bytes) {
    db_.reset();
    Options options;
    options.env = &env_;
    options.write_buffer_size = 8 << 10;  // tiny: data lives in tables
    options.block_cache_bytes = block_cache_bytes;
    auto db = DB::Open(options, "/db");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  // Writes kKeys keys and compacts, so every read goes through SSTables.
  void Populate() {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db_->Put({.sync = false}, Key(i), "val" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  // All table file numbers currently in the DB directory.
  std::set<uint64_t> TableNumbers() {
    std::set<uint64_t> numbers;
    std::vector<std::string> names = *env_.ListDir("/db");
    for (const std::string& name : names) {
      uint64_t number = 0;
      if (ParseFileName(name, &number) == FileKind::kTable) numbers.insert(number);
    }
    return numbers;
  }

  static constexpr int kKeys = 2000;
  CountingEnv env_;
  std::unique_ptr<DB> db_;
};

TEST_F(BlockCacheTest, HotGetDoesZeroEnvReads) {
  Open(/*block_cache_bytes=*/8 << 20);
  Populate();
  // First read warms the data block (index + filter are pinned at table
  // open, so only the data block can miss).
  ASSERT_EQ(*db_->Get({}, Key(123)), "val123");
  uint64_t reads_after_warm = env_.random_reads();
  for (int i = 0; i < 10; i++) {
    ASSERT_EQ(*db_->Get({}, Key(123)), "val123");
  }
  EXPECT_EQ(env_.random_reads(), reads_after_warm);
  auto stats = db_->GetStats();
  EXPECT_GE(stats.block_cache_hits, 10u);
  EXPECT_GT(stats.block_cache_bytes, 0u);
}

TEST_F(BlockCacheTest, DisabledCacheReadsEnvEveryTime) {
  Open(/*block_cache_bytes=*/0);
  Populate();
  ASSERT_EQ(*db_->Get({}, Key(123)), "val123");
  uint64_t reads_after_first = env_.random_reads();
  ASSERT_EQ(*db_->Get({}, Key(123)), "val123");
  EXPECT_GT(env_.random_reads(), reads_after_first);
  EXPECT_EQ(db_->GetStats().block_cache_hits, 0u);
}

TEST_F(BlockCacheTest, RepeatedScanServedFromCache) {
  Open(/*block_cache_bytes=*/8 << 20);
  Populate();
  auto scan = [&] {
    int n = 0;
    auto iter = db_->NewIterator({});
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    EXPECT_EQ(n, kKeys);
  };
  scan();  // warms every data block
  uint64_t reads_after_warm = env_.random_reads();
  scan();
  EXPECT_EQ(env_.random_reads(), reads_after_warm);
}

TEST_F(BlockCacheTest, CorruptionSurfacesAfterReopenNeverStaleCache) {
  Open(/*block_cache_bytes=*/8 << 20);
  Populate();
  ASSERT_EQ(*db_->Get({}, Key(0)), "val0");  // now cached
  std::set<uint64_t> tables = TableNumbers();
  ASSERT_FALSE(tables.empty());
  db_.reset();
  // Flip one bit inside the first data block of every table, then reopen.
  // The cache is per-DB-instance, so the reopened DB must re-read and
  // report Corruption — a stale cached copy of the old bytes would wrongly
  // return "val0" here.
  for (uint64_t number : tables) {
    std::string path = TableFileName("/db", number);
    auto data = *env_.ReadFileToString(path);
    data[32] ^= 0x01;
    ASSERT_TRUE(env_.WriteStringToFile(path, data, true).ok());
  }
  Open(/*block_cache_bytes=*/8 << 20);
  auto got = db_->Get({}, Key(0));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST_F(BlockCacheTest, TableNumbersNeverRecycled) {
  // The block-cache key is (file number, offset): safe only because table
  // numbers are never reused within a DB, even across compactions (which
  // delete old tables) and reopens. Walk the DB through several
  // generations and check every new table number exceeds all prior ones.
  Open(/*block_cache_bytes=*/8 << 20);
  uint64_t max_seen = 0;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(
          db_->Put({.sync = false}, Key(i), "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    std::set<uint64_t> tables = TableNumbers();
    ASSERT_FALSE(tables.empty());
    for (uint64_t number : tables) {
      EXPECT_GT(number, max_seen) << "table number recycled in round " << round;
    }
    max_seen = std::max(max_seen, *tables.rbegin());
    if (round == 1) Open(/*block_cache_bytes=*/8 << 20);  // clean reopen
  }
  ASSERT_EQ(*db_->Get({}, Key(7)), "r2");
}

// Model check: random Put/Delete/Get/scan/reopen/crash against std::map.
class DBModelCheck : public ::testing::TestWithParam<int> {};

TEST_P(DBModelCheck, MatchesStdMap) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 2 << 10;  // tiny: constant flush/compaction
  auto db = *DB::Open(options, "/m");
  std::map<std::string, std::string> model;   // durable state
  std::map<std::string, std::string> dirty;   // includes unsynced writes
  Rng rng(static_cast<uint64_t>(GetParam()));

  // Durability points: an explicit WAL sync, or a memtable flush (the
  // SSTable + manifest are synced); both make the whole write prefix
  // durable.
  uint64_t flushes_seen = 0;
  auto note_durability = [&](bool synced_write) {
    uint64_t flushes = db->GetStats().flushes;
    if (synced_write || flushes != flushes_seen) model = dirty;
    flushes_seen = flushes;
  };

  for (int step = 0; step < 1500; step++) {
    int op = static_cast<int>(rng.Uniform(100));
    std::string key = "k" + std::to_string(rng.Uniform(60));
    if (op < 45) {
      std::string value = "v" + std::to_string(step);
      bool sync = rng.Bernoulli(0.5);
      ASSERT_TRUE(db->Put({.sync = sync}, key, value).ok());
      dirty[key] = value;
      note_durability(sync);
    } else if (op < 60) {
      bool sync = rng.Bernoulli(0.5);
      ASSERT_TRUE(db->Delete({.sync = sync}, key).ok());
      dirty.erase(key);
      note_durability(sync);
    } else if (op < 85) {
      auto got = db->Get({}, key);
      auto it = dirty.find(key);
      if (it == dirty.end()) {
        ASSERT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key << " " << got.status().ToString();
        ASSERT_EQ(*got, it->second);
      }
    } else if (op < 92) {
      // Full scan must equal the dirty model exactly.
      auto iter = db->NewIterator({});
      auto it = dirty.begin();
      for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++it) {
        ASSERT_NE(it, dirty.end());
        ASSERT_EQ(iter->key(), it->first);
        ASSERT_EQ(iter->value(), it->second);
      }
      ASSERT_EQ(it, dirty.end());
    } else if (op < 97) {
      // Clean reopen: nothing may be lost.
      db.reset();
      db = *DB::Open(options, "/m");
      model = dirty;
      flushes_seen = db->GetStats().flushes;
    } else {
      // Crash: undurable suffix is lost, durable prefix must survive.
      db.reset();
      env.DropUnsyncedData();
      db = *DB::Open(options, "/m");
      dirty = model;
      flushes_seen = db->GetStats().flushes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DBModelCheck, ::testing::Range(1, 9));

// -------------------------------------------------- crash-recovery matrix

// Deterministic workload for the crash matrix: synced puts/deletes whose
// values are big enough to force several memtable flushes, so crash
// points land in every layer of the commit path (WAL append, WAL sync,
// SSTable build, manifest append, WAL rotation/delete). Stops at the
// first failed op — the injected crash. Every op uses sync=true, so
// everything acknowledged must survive power loss; the one op in flight
// at the crash was NOT acknowledged, and like on a real disk it may land
// either way (a torn append can happen to persist the whole record).
struct CrashWorkloadResult {
  std::map<std::string, std::optional<std::string>> acked;  // nullopt = deleted
  bool crashed = false;
  std::string inflight_key;                  // set iff crashed
  std::optional<std::string> inflight_value; // the op that got no ack
};

CrashWorkloadResult RunCrashWorkload(DB* db) {
  CrashWorkloadResult r;
  for (int i = 0; i < 120; i++) {
    std::string key = "k" + std::to_string(i % 17);
    if (i % 7 == 6) {
      if (!db->Delete({.sync = true}, key).ok()) {
        r.crashed = true;
        r.inflight_key = key;
        r.inflight_value = std::nullopt;
        break;
      }
      r.acked[key] = std::nullopt;
    } else {
      std::string value =
          "v" + std::to_string(i) + std::string(180, static_cast<char>('a' + i % 23));
      if (!db->Put({.sync = true}, key, value).ok()) {
        r.crashed = true;
        r.inflight_key = key;
        r.inflight_value = value;
        break;
      }
      r.acked[key] = value;
    }
  }
  return r;
}

// True iff the recovered `got` for `key` matches expectation `want`
// (nullopt = must be absent).
testing::AssertionResult Matches(const Result<std::string>& got,
                                 const std::optional<std::string>& want) {
  if (want.has_value()) {
    if (!got.ok()) {
      return testing::AssertionFailure()
             << "expected value, got " << got.status().ToString();
    }
    if (*got != *want) {
      return testing::AssertionFailure() << "value mismatch";
    }
    return testing::AssertionSuccess();
  }
  if (!got.status().IsNotFound()) {
    return testing::AssertionFailure()
           << "expected absent, got " << got.status().ToString();
  }
  return testing::AssertionSuccess();
}

TEST(CrashRecoveryMatrix, AckedWritesSurviveEveryCrashPoint) {
  Options options;
  options.write_buffer_size = 4 << 10;

  // Pass 1, fault-free: size the matrix. The sweep below crashes at every
  // single write-side op the workload performs.
  uint64_t workload_ops = 0;
  {
    MemEnv base;
    FaultyEnv faulty(&base, /*seed=*/1);
    options.env = &faulty;
    auto db = std::move(*DB::Open(options, "/c"));
    uint64_t ops_at_start = faulty.write_ops();
    ASSERT_FALSE(RunCrashWorkload(db.get()).crashed);
    // Measured before shutdown: the sweep arms the crash while the
    // workload runs, so shutdown-time ops are out of range.
    workload_ops = faulty.write_ops() - ops_at_start;
    db.reset();
  }
  ASSERT_GT(workload_ops, 100u);  // flush + manifest paths are in range

  uint64_t wal_torn = 0, manifest_torn = 0, torn_appends = 0;
  for (uint64_t k = 1; k <= workload_ops; k++) {
    MemEnv base;
    FaultyEnv faulty(&base, /*seed=*/k);  // torn lengths vary across points
    options.env = &faulty;
    auto db = std::move(*DB::Open(options, "/c"));
    faulty.CrashAfterWriteOps(k);
    CrashWorkloadResult r = RunCrashWorkload(db.get());
    // The env always crashes within the workload's op range, but the
    // workload may not observe it: if the k-th op is a best-effort
    // cleanup (e.g. deleting the old WAL after rotation) its failure is
    // swallowed by design and every user-visible op was acked.
    ASSERT_TRUE(faulty.crashed()) << "crash point " << k << " never fired";
    db.reset();
    base.DropUnsyncedData();  // power loss: only fsync'ed bytes remain
    faulty.Revive();
    auto reopened = DB::Open(options, "/c");
    ASSERT_TRUE(reopened.ok()) << "recovery failed at crash point " << k
                               << ": " << reopened.status().ToString();
    db = std::move(*reopened);
    wal_torn += db->GetStats().wal_torn_tails;
    manifest_torn += db->GetStats().manifest_torn_tails;
    torn_appends += faulty.stats().torn_appends;
    for (const auto& [key, value] : r.acked) {
      auto got = db->Get({}, key);
      if (key == r.inflight_key) {
        // The op in flight at the crash was never acknowledged; like on a
        // real disk it may land either way (a torn append can persist the
        // whole record). Both the pre-crash acked value and the in-flight
        // value are linearizable outcomes — anything else is a bug.
        EXPECT_TRUE(Matches(got, value) || Matches(got, r.inflight_value))
            << "crash point " << k << " key " << key
            << " is neither the acked nor the in-flight value";
      } else {
        EXPECT_TRUE(Matches(got, value))
            << "crash point " << k << " corrupted acked key " << key;
      }
    }
    // The in-flight key, if never previously acked, may only hold the
    // in-flight value or be absent — never garbage.
    if (!r.acked.count(r.inflight_key)) {
      auto got = db->Get({}, r.inflight_key);
      EXPECT_TRUE(Matches(got, std::nullopt) || Matches(got, r.inflight_value))
          << "crash point " << k;
    }
    // The recovered DB must be fully usable, not just readable.
    ASSERT_TRUE(db->Put({.sync = true}, "post-recovery", "ok").ok())
        << "crash point " << k;
  }
  // The sweep must have exercised the interesting recovery paths — torn
  // tails detected and truncated — not only clean-tail reopens.
  EXPECT_GT(torn_appends, 0u);
  EXPECT_GT(wal_torn, 0u);
  EXPECT_GT(manifest_torn, 0u);
}

TEST(CrashRecoveryMatrix, SameSeedReplaysIdenticalFaultSchedule) {
  // Two runs with the same seed and crash point must tear identically
  // and recover to identical state.
  auto run = [](uint64_t seed) {
    Options options;
    options.write_buffer_size = 4 << 10;
    MemEnv base;
    FaultyEnv faulty(&base, seed);
    options.env = &faulty;
    auto db = std::move(*DB::Open(options, "/c"));
    faulty.CrashAfterWriteOps(57);
    RunCrashWorkload(db.get());
    db.reset();
    base.DropUnsyncedData();
    faulty.Revive();
    db = std::move(*DB::Open(options, "/c"));
    std::string dump;
    auto iter = db->NewIterator({});
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      dump += std::string(iter->key()) + "=" + std::string(iter->value()) + ";";
    }
    return std::make_pair(dump, faulty.stats().torn_appends);
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(FaultyEnvTest, SyncFailureSurfacesToCallerAndWalRotates) {
  MemEnv base;
  FaultyEnv faulty(&base, 3);
  Options options;
  options.env = &faulty;
  auto db = std::move(*DB::Open(options, "/s"));
  ASSERT_TRUE(db->Put({.sync = true}, "a", "1").ok());

  // fsync returns EIO: the commit must fail loudly, and the write must
  // NOT be applied (acknowledged state == recoverable state).
  faulty.FailSyncs(true);
  Status s = db->Put({.sync = true}, "b", "2");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(db->GetStats().wal_write_failures, 1u);
  EXPECT_TRUE(db->Get({}, "b").status().IsNotFound());

  // Once the disk heals, the next write abandons the suspect WAL
  // (rotation) and proceeds.
  faulty.FailSyncs(false);
  ASSERT_TRUE(db->Put({.sync = true}, "c", "3").ok());
  EXPECT_EQ(db->GetStats().wal_rotations_after_error, 1u);
  EXPECT_EQ(*db->Get({}, "a"), "1");
  EXPECT_EQ(*db->Get({}, "c"), "3");

  // Crash + reopen: the acknowledged writes survive the rotation; the
  // failed write stays gone.
  db.reset();
  base.DropUnsyncedData();
  db = std::move(*DB::Open(options, "/s"));
  EXPECT_EQ(*db->Get({}, "a"), "1");
  EXPECT_EQ(*db->Get({}, "c"), "3");
  EXPECT_TRUE(db->Get({}, "b").status().IsNotFound());
}

// ---------------------------------------------------------- Group commit

// Commits from `threads` OS threads through one GroupCommitter, each
// writing `per_thread` sequential keys prefixed with its thread index.
// Returns per-thread status vectors in submission order.
std::vector<std::vector<Status>> CommitConcurrently(GroupCommitter* committer,
                                                    int threads,
                                                    int per_thread) {
  std::vector<std::vector<Status>> statuses(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    statuses[t].resize(per_thread);
    workers.emplace_back([committer, t, per_thread, &statuses] {
      for (int i = 0; i < per_thread; i++) {
        WriteBatch batch;
        std::string key = "t" + std::to_string(t) + "/k" + std::to_string(i);
        batch.Put(key, "v" + std::to_string(i));
        statuses[t][i] = committer->Commit(std::move(batch));
      }
    });
  }
  for (auto& w : workers) w.join();
  return statuses;
}

TEST(GroupCommitTest, OneFsyncPerBatchWindowObservableViaMetrics) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.serialize_access = true;
  auto db = std::move(*DB::Open(options, "/gc"));
  const uint64_t syncs_before = db->GetStats().wal_syncs;

  GroupCommitterOptions gc_options;
  gc_options.max_batch_delay_us = 2000;  // window wide enough to coalesce
  GroupCommitter committer(db.get(), gc_options);

  // Export the committer's live counters the way cluster::StorageNode
  // does, and assert through the registry snapshot rather than private
  // state: the fsync count must equal the group count exactly.
  obs::MetricsRegistry registry;
  registry.RegisterCallback("gc.commits", 0, [&committer] {
    return static_cast<double>(committer.stats().commits);
  });
  registry.RegisterCallback("gc.groups", 0, [&committer] {
    return static_cast<double>(committer.stats().groups);
  });
  registry.RegisterCallback("db.wal_syncs_delta", 0, [&db, syncs_before] {
    return static_cast<double>(db->GetStats().wal_syncs - syncs_before);
  });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  auto statuses = CommitConcurrently(&committer, kThreads, kPerThread);
  committer.Drain();
  for (const auto& thread_statuses : statuses) {
    for (const Status& s : thread_statuses) ASSERT_TRUE(s.ok());
  }

  std::map<std::string, double> by_name;
  for (const auto& sample : registry.Snapshot()) {
    by_name[sample.name] = sample.value;
  }
  EXPECT_EQ(by_name["gc.commits"], kThreads * kPerThread);
  // Exactly one fsync per sealed batch window — no extra syncs snuck in
  // through another path, none were skipped.
  EXPECT_EQ(by_name["gc.groups"], by_name["db.wal_syncs_delta"]);
  // And the window actually coalesced: far fewer fsyncs than commits.
  EXPECT_LT(by_name["gc.groups"], by_name["gc.commits"] / 2);

  auto stats = committer.stats();
  EXPECT_GE(stats.max_group_commits, 2u);
  EXPECT_EQ(stats.sync_failures, 0u);
  for (int t = 0; t < kThreads; t++) {
    EXPECT_EQ(*db->Get({}, "t" + std::to_string(t) + "/k0"), "v0");
  }
}

TEST(GroupCommitTest, SyncFailureFailsEveryWaiterInTheAtRiskGroups) {
  MemEnv base;
  FaultyEnv faulty(&base, 77);
  Options options;
  options.env = &faulty;
  options.serialize_access = true;
  auto db = std::move(*DB::Open(options, "/gc"));

  GroupCommitterOptions gc_options;
  gc_options.max_batch_delay_us = 1000;
  GroupCommitter committer(db.get(), gc_options);

  {
    WriteBatch batch;
    batch.Put("before", "1");
    ASSERT_TRUE(committer.Commit(std::move(batch)).ok());
  }

  // Every commit grouped while syncs fail must surface the error to its
  // own waiter — an fsync failure is never swallowed by the coalescing.
  faulty.FailSyncs(true);
  auto statuses = CommitConcurrently(&committer, 4, 8);
  committer.Drain();
  faulty.FailSyncs(false);
  for (const auto& thread_statuses : statuses) {
    for (const Status& s : thread_statuses) {
      EXPECT_FALSE(s.ok()) << "commit acked while its fsync failed";
    }
  }
  auto stats = committer.stats();
  EXPECT_GE(stats.sync_failures, 1u);
  EXPECT_LE(stats.sync_failures, stats.groups);

  // Healthy again: the DB rotated its WAL after the write error (PR 2
  // semantics), so later groups commit cleanly.
  {
    WriteBatch batch;
    batch.Put("after", "2");
    EXPECT_TRUE(committer.Commit(std::move(batch)).ok());
  }
  EXPECT_EQ(*db->Get({}, "before"), "1");
  EXPECT_EQ(*db->Get({}, "after"), "2");
}

TEST(GroupCommitTest, CrashRecoveryNeverLosesAckedGroupMembers) {
  // Batch-boundary recovery, crash-recovery-matrix style: crash the env
  // after k write ops while threads are committing through shared
  // fsyncs, power-loss the unsynced tail, reopen, and require every
  // commit that was ACKED before the crash to still be present — group
  // members share an fsync, so an ack is only sound if the whole group
  // made it. Keys never acked may or may not survive (their group's
  // sync might have been mid-flight); both outcomes are legal.
  for (uint64_t crash_after : {5u, 20u, 60u}) {
    MemEnv base;
    FaultyEnv faulty(&base, 1000 + crash_after);
    Options options;
    options.env = &faulty;
    options.serialize_access = true;
    auto db = std::move(*DB::Open(options, "/gc"));

    std::vector<std::set<std::string>> acked(4);
    {
      GroupCommitterOptions gc_options;
      gc_options.max_batch_delay_us = 500;
      GroupCommitter committer(db.get(), gc_options);
      faulty.CrashAfterWriteOps(crash_after);

      std::vector<std::thread> workers;
      for (int t = 0; t < 4; t++) {
        workers.emplace_back([&committer, &acked, t] {
          for (int i = 0; i < 40; i++) {
            WriteBatch batch;
            std::string key =
                "t" + std::to_string(t) + "/k" + std::to_string(i);
            batch.Put(key, "v");
            if (committer.Commit(std::move(batch)).ok()) {
              acked[t].insert(key);
            }
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    ASSERT_TRUE(faulty.crashed()) << "crash_after=" << crash_after;

    db.reset();
    base.DropUnsyncedData();
    faulty.Revive();
    db = std::move(*DB::Open(options, "/gc"));
    size_t total_acked = 0;
    for (int t = 0; t < 4; t++) {
      total_acked += acked[t].size();
      for (const std::string& key : acked[t]) {
        EXPECT_TRUE(db->Get({}, key).ok())
            << "crash_after=" << crash_after << " lost acked key " << key;
      }
    }
    // The crash points are sized so some commits land before the crash.
    if (crash_after >= 20) {
      EXPECT_GT(total_acked, 0u);
    }
  }
}

TEST(FaultyEnvTest, OpsFailWhileCrashedUntilRevived) {
  MemEnv base;
  FaultyEnv faulty(&base, 11);
  auto file = std::move(*faulty.NewWritableFile("/f"));
  faulty.CrashAfterWriteOps(1);
  EXPECT_FALSE(file->Append("x").ok());
  EXPECT_TRUE(faulty.crashed());
  EXPECT_FALSE(faulty.NewWritableFile("/g").ok());
  EXPECT_FALSE(faulty.DeleteFile("/f").ok());
  EXPECT_GE(faulty.stats().failed_ops_while_crashed, 2u);
  faulty.Revive();
  EXPECT_TRUE(faulty.NewWritableFile("/g").ok());
}

// ------------------------------------------------- Sharded memtables

TEST(ShardedMemTable, RoutesByFnv1aAndReadsBack) {
  ShardedMemTable mem(4);
  ASSERT_EQ(mem.shard_count(), 4);
  for (int i = 0; i < 200; i++) {
    std::string key = "key" + std::to_string(i);
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key,
            "v" + std::to_string(i));
    // The entry must land in the shard the router names — the same
    // FNV-1a family the execution lanes hash with.
    EXPECT_GT(mem.shard(mem.ShardFor(key)).entries(), 0u);
  }
  for (int i = 0; i < 200; i++) {
    std::string value;
    Status s;
    ASSERT_TRUE(
        mem.Get("key" + std::to_string(i), kMaxSequenceNumber, &value, &s));
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(ShardedMemTable, MergedIteratorIsGloballySorted) {
  ShardedMemTable mem(8);
  Rng rng(21);
  std::set<std::string> keys;
  for (int i = 0; i < 500; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(100000));
    keys.insert(key);
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key, "v");
  }
  auto iter = mem.NewIterator();
  std::string prev;
  size_t seen = 0;
  InternalKeyComparator icmp;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string current(iter->key());
    if (seen > 0) EXPECT_LT(icmp.Compare(prev, current), 0);
    prev = current;
    seen++;
  }
  EXPECT_EQ(seen, mem.entries());
  EXPECT_GE(seen, keys.size());
}

TEST(ShardedMemTable, SingleShardMatchesPlainMemTable) {
  ShardedMemTable sharded(1);
  MemTable plain;
  for (int i = 0; i < 100; i++) {
    std::string key = "k" + std::to_string(i);
    sharded.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key, "v");
    plain.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key, "v");
  }
  auto a = sharded.NewIterator();
  auto b = plain.NewIterator();
  a->SeekToFirst();
  b->SeekToFirst();
  while (a->Valid() && b->Valid()) {
    EXPECT_EQ(a->key(), b->key());
    a->Next();
    b->Next();
  }
  EXPECT_EQ(a->Valid(), b->Valid());
}

TEST_F(DBTest, ShardedMemtableReadYourWritesAcrossShards) {
  // Keys that provably land in different shards must all be visible
  // before any flush: the read path merges every shard.
  Options options;
  options.env = &env_;
  options.memtable_shards = 8;
  db_.reset();
  auto db = DB::Open(options, "/db");
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  ShardedMemTable router(8);
  std::set<int> shards_hit;
  for (int i = 0; i < 64; i++) {
    std::string key = "rw" + std::to_string(i);
    shards_hit.insert(router.ShardFor(key));
    ASSERT_TRUE(db_->Put({}, key, "v" + std::to_string(i)).ok());
    EXPECT_EQ(Get(key), "v" + std::to_string(i));
  }
  EXPECT_GT(shards_hit.size(), 1u) << "keys all hashed to one shard";
  EXPECT_EQ(db_->GetStats().memtable_shards, 8);
  // And across a flush + reopen boundary.
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 64; i++) {
    EXPECT_EQ(Get("rw" + std::to_string(i)), "v" + std::to_string(i));
  }
}

// ------------------------------------------------- Sub-compactions

// Writes a seeded random workload (puts, overwrites, deletes), compacts
// everything, and returns the full key=value dump.
std::string CompactedDump(DB* db, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < 4000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(700));
    if (rng.Uniform(10) == 0) {
      EXPECT_TRUE(db->Delete({}, key).ok());
    } else {
      EXPECT_TRUE(db->Put({}, key, "val" + std::to_string(i)).ok());
    }
  }
  EXPECT_TRUE(db->CompactAll().ok());
  std::string dump;
  auto iter = db->NewIterator({});
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dump += std::string(iter->key()) + "=" + std::string(iter->value()) + ";";
  }
  return dump;
}

TEST(Subcompaction, OutputMatchesSingleThreadedCompaction) {
  auto run = [](int subcompactions) {
    MemEnv env;
    Options options;
    options.env = &env;
    options.write_buffer_size = 4 << 10;  // many input files per compaction
    options.subcompactions = subcompactions;
    auto db = std::move(*DB::Open(options, "/db"));
    std::string dump = CompactedDump(db.get(), 17);
    return std::make_pair(dump, db->GetStats().subcompactions_run);
  };
  auto [single, single_subs] = run(1);
  auto [parallel, parallel_subs] = run(4);
  EXPECT_EQ(single, parallel);
  EXPECT_EQ(single_subs, 0u);
  EXPECT_GT(parallel_subs, 0u) << "no compaction actually partitioned";
  EXPECT_NE(single.find("key1="), std::string::npos);
}

TEST(Subcompaction, CrashMidCompactionRecoversCleanly) {
  // Crash at many points inside a parallel CompactAll. Compaction is
  // invisible to users: after every crash + reopen, the acked data must
  // read back exactly; torn compaction outputs are orphans to reap.
  Options options;
  options.write_buffer_size = 4 << 10;
  options.subcompactions = 4;

  // Pass 1, fault-free: learn how many write ops the compaction performs
  // and what the data should look like.
  std::map<std::string, std::string> model;
  uint64_t compact_ops = 0;
  {
    MemEnv base;
    FaultyEnv faulty(&base, /*seed=*/29);
    options.env = &faulty;
    auto db = std::move(*DB::Open(options, "/db"));
    Rng rng(31);
    for (int i = 0; i < 1500; i++) {
      std::string key = "key" + std::to_string(rng.Uniform(300));
      std::string value = "val" + std::to_string(i);
      ASSERT_TRUE(db->Put({.sync = true}, key, value).ok());
      model[key] = value;
    }
    uint64_t ops_before = faulty.write_ops();
    ASSERT_TRUE(db->CompactAll().ok());
    compact_ops = faulty.write_ops() - ops_before;
  }
  ASSERT_GT(compact_ops, 20u);

  for (uint64_t k = 5; k < compact_ops; k += compact_ops / 7) {
    MemEnv base;
    FaultyEnv faulty(&base, /*seed=*/k);
    options.env = &faulty;
    auto db = std::move(*DB::Open(options, "/db"));
    Rng rng(31);
    for (int i = 0; i < 1500; i++) {
      std::string key = "key" + std::to_string(rng.Uniform(300));
      ASSERT_TRUE(db->Put({.sync = true}, key, "val" + std::to_string(i)).ok());
    }
    faulty.CrashAfterWriteOps(k);
    Status s = db->CompactAll();  // expected to fail at most crash points
    (void)s;
    db.reset();
    base.DropUnsyncedData();
    faulty.Revive();
    auto reopened = DB::Open(options, "/db");
    ASSERT_TRUE(reopened.ok())
        << "crash at compaction op " << k << ": "
        << reopened.status().ToString();
    db = std::move(*reopened);
    for (const auto& [key, value] : model) {
      auto got = db->Get({}, key);
      ASSERT_TRUE(got.ok()) << "crash at op " << k << " lost " << key;
      EXPECT_EQ(*got, value) << "crash at op " << k;
    }
    // Still fully usable: the next compaction completes.
    ASSERT_TRUE(db->CompactAll().ok()) << "crash at op " << k;
  }
}

// ------------------------------------------------- Stall shaping

TEST(StallShaping, SoftSlowdownEngagesBeforeHardStop) {
  // Background maintenance with compaction deferred far out (trigger
  // 100): flushes pile L0 past the slowdown line, so writes take the
  // one-per-write soft delay; the stop line stays unreachable, so the
  // hard tier never engages. The obs counters are the assertion surface.
  MemEnv env;
  Options options;
  options.env = &env;
  options.serialize_access = true;
  options.background_maintenance = true;
  options.write_buffer_size = 8 << 10;
  options.l0_compaction_trigger = 100;
  options.l0_slowdown_trigger = 4;
  options.l0_stop_trigger = 100000;
  options.slowdown_delay_us = 100;
  {
    auto db = std::move(*DB::Open(options, "/db"));
    // Small values: many writes per memtable switch, so each soft delay
    // gives the maintenance thread ample time to drain the imm queue and
    // the hard tier (imm backlog) stays out of reach.
    std::string value(128, 'v');
    for (int i = 0; i < 1200; i++) {
      ASSERT_TRUE(db->Put({.sync = true}, "k" + std::to_string(i), value).ok());
    }
    DB::Stats stats = db->GetStats();
    EXPECT_GT(stats.stall_soft, 0u) << "L0 pressure never engaged the soft tier";
    EXPECT_GT(stats.stall_us, 0u) << "soft stalls must accumulate stall time";
    // The L0 stop line is unreachable here, so soft shaping must carry
    // the backpressure. (A rare hard stall can still fire through the
    // imm-backlog path when the maintenance thread is starved for two
    // whole memtable fills — e.g. single-core CI — so assert dominance,
    // not absence.)
    EXPECT_GT(stats.stall_soft, stats.stall_hard)
        << "the soft tier should engage long before any hard stall";
    // Still correct under pressure.
    for (int i = 0; i < 1200; i++) {
      auto got = db->Get({}, "k" + std::to_string(i));
      ASSERT_TRUE(got.ok()) << i;
    }
  }
}

TEST(StallShaping, HardStopBoundsImmBacklogAndRecovers) {
  // Tiny triggers with compaction enabled: writers outrun the
  // maintenance thread, hit the hard tier, and every write still lands.
  MemEnv env;
  Options options;
  options.env = &env;
  options.serialize_access = true;
  options.background_maintenance = true;
  options.write_buffer_size = 2 << 10;
  options.slowdown_delay_us = 10;
  auto db = std::move(*DB::Open(options, "/db"));
  std::string value(512, 'v');
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db->Put({.sync = true}, "k" + std::to_string(i % 50), value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  for (int i = 0; i < 50; i++) {
    auto got = db->Get({}, "k" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
  }
}

TEST(StallShaping, ConcurrentWritersWithFullParallelStack) {
  // The TSan target: sharded memtables + sub-compactions + background
  // maintenance under real concurrent writers.
  MemEnv env;
  Options options;
  options.env = &env;
  options.serialize_access = true;
  options.background_maintenance = true;
  options.memtable_shards = 4;
  options.subcompactions = 4;
  options.write_buffer_size = 16 << 10;
  options.slowdown_delay_us = 10;
  auto db = std::move(*DB::Open(options, "/db"));
  constexpr int kThreads = 4, kPerThread = 300;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&db, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + ":" + std::to_string(i);
        EXPECT_TRUE(db->Put({.sync = (i % 7 == 0)}, key, "v" + key).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_TRUE(db->CompactAll().ok());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      std::string key = "t" + std::to_string(t) + ":" + std::to_string(i);
      auto got = db->Get({}, key);
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(*got, "v" + key);
    }
  }
}

// ------------------------------------------------- WAL prealloc/recycle

TEST_F(DBTest, WalRecyclePoolsRetiredLogsAndSurvivesReopen) {
  Options options;
  options.env = &env_;
  options.write_buffer_size = 4 << 10;
  options.wal_recycle = true;
  options.wal_preallocate_bytes = 32 << 10;
  db_.reset();
  db_ = std::move(*DB::Open(options, "/db"));
  std::string value(256, 'v');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put({.sync = true}, "k" + std::to_string(i), value).ok());
  }
  DB::Stats stats = db_->GetStats();
  EXPECT_GT(stats.flushes, 1u);
  EXPECT_GT(stats.wal_recycles + stats.wal_preallocations, 0u);
  EXPECT_GT(stats.wal_recycles, 0u) << "retired WALs never re-entered service";
  // Clean reopen with recycling still on: pool files must not confuse
  // recovery.
  db_.reset();
  db_ = std::move(*DB::Open(options, "/db"));
  for (int i = 0; i < 200; i++) {
    auto got = db_->Get({}, "k" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
  }
  // Reopen with recycling off: pool files are reaped, data intact.
  options.wal_recycle = false;
  db_.reset();
  db_ = std::move(*DB::Open(options, "/db"));
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Get({}, "k" + std::to_string(i)).ok()) << i;
  }
  auto names = env_.ListDir("/db");
  ASSERT_TRUE(names.ok());
  for (const auto& n : *names) {
    uint64_t number = 0;
    EXPECT_NE(ParseFileName(n, &number), FileKind::kWalPool)
        << n << " survived a non-recycling reopen";
  }
}

TEST_F(DBTest, RecycledWalNeverResurrectsDeletedKeys) {
  // The stale-record hazard: a WAL full of old puts is parked, reused,
  // and the DB crashes right after. If parking didn't truncate, replay
  // would resurrect the old records. Assert the tombstone wins.
  Options options;
  options.env = &env_;
  options.write_buffer_size = 4 << 10;
  options.wal_recycle = true;
  db_.reset();
  db_ = std::move(*DB::Open(options, "/db"));
  std::string value(512, 'v');
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(db_->Put({.sync = true}, "victim" + std::to_string(i), value).ok());
  }
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(db_->Delete({.sync = true}, "victim" + std::to_string(i)).ok());
  }
  // Force more flush cycles so the post-delete WALs get parked and
  // recycled WALs re-enter service.
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(db_->Put({.sync = true}, "other" + std::to_string(i), value).ok());
  }
  EXPECT_GT(db_->GetStats().wal_recycles, 0u);
  // Power loss: unsynced bytes vanish, pool files stay as-parked.
  db_.reset();
  env_.DropUnsyncedData();
  db_ = std::move(*DB::Open(options, "/db"));
  for (int i = 0; i < 60; i++) {
    auto got = db_->Get({}, "victim" + std::to_string(i));
    EXPECT_TRUE(got.status().IsNotFound())
        << "victim" << i << " resurrected from a recycled WAL";
  }
}

}  // namespace
}  // namespace lo::storage
