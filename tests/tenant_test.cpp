// Tests for the multi-tenant QoS subsystem (src/tenant):
//
//   * spec parsing (LO_TENANTS / --tenants grammar),
//   * token-bucket + in-flight + fuel-window admission with an injected
//     clock,
//   * FairQueue deficit-round-robin pop order (and its exact-FIFO
//     degenerate case with a single tenant),
//   * AsyncMutex DRR grant order across tenant groups,
//   * the end-to-end fairness property on a real-threaded ParallelNode:
//     with weights 3:1 the observed execution shares stay within 10%,
//   * VM fuel budgets: an invocation is trapped mid-flight with
//     kTenantThrottled once its tenant's fuel window runs dry,
//   * a concurrent Admit/Release/ChargeFuel hammer (for TSan).
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/async_mutex.h"
#include "runtime/executor.h"
#include "storage/env.h"
#include "tenant/tenant.h"
#include "vm/assembler.h"

namespace lo::tenant {
namespace {

// --- spec parsing ------------------------------------------------------

TEST(TenantSpec, ParsesFullSpec) {
  auto parsed = ParseTenantSpec(
      "1:weight=4,rate=2000,burst=200,fuel=5000000,inflight=64;2:weight=1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  const TenantConfig& a = parsed->at(1);
  EXPECT_EQ(a.weight, 4u);
  EXPECT_DOUBLE_EQ(a.rate_per_sec, 2000);
  EXPECT_DOUBLE_EQ(a.burst, 200);
  EXPECT_EQ(a.fuel_per_window, 5000000u);
  EXPECT_EQ(a.max_inflight, 64u);
  const TenantConfig& b = parsed->at(2);
  EXPECT_EQ(b.weight, 1u);
  EXPECT_DOUBLE_EQ(b.rate_per_sec, 0);  // unset limits stay unlimited
}

TEST(TenantSpec, TrailingSeparatorIsFine) {
  auto parsed = ParseTenantSpec("3:weight=2;");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(3).weight, 2u);
}

TEST(TenantSpec, RejectsMalformedEntries) {
  EXPECT_FALSE(ParseTenantSpec("weight=4").ok());          // missing "<id>:"
  EXPECT_FALSE(ParseTenantSpec("0:weight=4").ok());        // id 0 reserved
  EXPECT_FALSE(ParseTenantSpec("1:color=red").ok());       // unknown key
  EXPECT_FALSE(ParseTenantSpec("1:weight").ok());          // missing '='
  EXPECT_FALSE(ParseTenantSpec("1:rate=abc").ok());        // bad number
  EXPECT_FALSE(ParseTenantSpec("1:rate=-5").ok());         // negative
}

// --- admission control (injected clock) --------------------------------

TEST(TenantRegistry, TokenBucketShedsOverRate) {
  int64_t now_us = 0;
  TenantRegistry::Options options;
  options.clock = [&now_us] { return now_us; };
  TenantRegistry registry(options);
  registry.Configure(1, TenantConfig{.rate_per_sec = 10, .burst = 2});

  // A fresh config starts with a full bucket (= burst).
  EXPECT_TRUE(registry.Admit(1).ok());
  EXPECT_TRUE(registry.Admit(1).ok());
  Status third = registry.Admit(1);
  EXPECT_TRUE(third.IsTenantThrottled()) << third.ToString();
  EXPECT_EQ(registry.admitted(1), 2u);
  EXPECT_EQ(registry.shed(1), 1u);
  registry.Release(1);
  registry.Release(1);

  // 100ms at 10/s refills exactly one token.
  now_us += 100'000;
  EXPECT_TRUE(registry.Admit(1).ok());
  EXPECT_TRUE(registry.Admit(1).IsTenantThrottled());
  registry.Release(1);
}

TEST(TenantRegistry, UnconfiguredTenantsAlwaysAdmit) {
  TenantRegistry registry;
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(registry.Admit(0).ok());
    EXPECT_TRUE(registry.Admit(99).ok());
  }
  EXPECT_EQ(registry.admitted(0), 100u);
  EXPECT_EQ(registry.admitted(99), 100u);
  EXPECT_EQ(registry.shed(99), 0u);
}

TEST(TenantRegistry, InflightCap) {
  TenantRegistry registry;
  registry.Configure(2, TenantConfig{.max_inflight = 2});
  EXPECT_TRUE(registry.Admit(2).ok());
  EXPECT_TRUE(registry.Admit(2).ok());
  EXPECT_EQ(registry.inflight(2), 2u);
  EXPECT_TRUE(registry.Admit(2).IsTenantThrottled());
  registry.Release(2);
  EXPECT_TRUE(registry.Admit(2).ok());
  registry.Release(2);
  registry.Release(2);
  EXPECT_EQ(registry.inflight(2), 0u);
}

TEST(TenantRegistry, FuelWindowExhaustsAndRolls) {
  int64_t now_us = 0;
  TenantRegistry::Options options;
  options.window_ms = 1000;
  options.clock = [&now_us] { return now_us; };
  TenantRegistry registry(options);
  registry.Configure(3, TenantConfig{.fuel_per_window = 1000});

  EXPECT_TRUE(registry.ChargeFuel(3, 600).ok());
  Status over = registry.ChargeFuel(3, 600);  // 1200 > 1000: dry
  EXPECT_TRUE(over.IsTenantThrottled()) << over.ToString();
  // The spend is still recorded — metering is truthful even when over.
  EXPECT_EQ(registry.fuel_used(3), 1200u);
  // Admission now sheds too: the window has no fuel left.
  EXPECT_TRUE(registry.Admit(3).IsTenantThrottled());
  EXPECT_GE(registry.shed(3), 1u);

  // The next window grants a fresh budget.
  now_us += 1'000'000;
  EXPECT_TRUE(registry.Admit(3).ok());
  registry.Release(3);
  EXPECT_TRUE(registry.ChargeFuel(3, 600).ok());
}

// Unattributed fuel (tenant 0) is counted but never limited.
TEST(TenantRegistry, Tenant0FuelIsUnlimited) {
  TenantRegistry registry;
  EXPECT_TRUE(registry.ChargeFuel(0, 1'000'000'000).ok());
  EXPECT_EQ(registry.fuel_used(0), 1'000'000'000u);
}

TEST(TenantRegistry, ConcurrentAdmitReleaseChargeFuel) {
  TenantRegistry registry;
  registry.Configure(1, TenantConfig{.rate_per_sec = 1e9});  // never sheds
  registry.Configure(2, TenantConfig{.rate_per_sec = 1e-9, .burst = 1});
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIters; i++) {
        TenantId id = (i % 2 == 0) ? 1 : 2;
        if (registry.Admit(id).ok()) {
          (void)registry.ChargeFuel(id, 10);
          registry.Release(id);
        }
        (void)registry.WeightFor(id);
        registry.RecordQueueWait(id, i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.inflight(1), 0u);
  EXPECT_EQ(registry.inflight(2), 0u);
  // Every attempt either admitted or shed — none lost.
  EXPECT_EQ(registry.admitted(1) + registry.shed(1), kThreads * kIters / 2);
  EXPECT_EQ(registry.admitted(2) + registry.shed(2), kThreads * kIters / 2);
  // Tenant 2's bucket held a single token; nearly everything sheds.
  EXPECT_GT(registry.shed(2), 0u);
}

// --- FairQueue DRR -----------------------------------------------------

TEST(FairQueue, DeficitRoundRobinHonorsWeights) {
  FairQueue queue;
  std::vector<std::string> ran;
  auto push = [&](const std::string& label, TenantId tenant, uint32_t weight) {
    queue.Push([&ran, label] { ran.push_back(label); }, tenant, weight, 0);
  };
  // Interleaved arrival, weights 2:1.
  for (int i = 0; i < 4; i++) {
    push("a" + std::to_string(i), 1, 2);
    push("b" + std::to_string(i), 2, 1);
  }
  EXPECT_EQ(queue.size(), 8u);
  FairQueue::Item item;
  while (queue.Pop(&item)) item.job();
  // Tenant 1 runs 2 jobs per turn, tenant 2 one; once tenant 1 drains,
  // tenant 2 gets every turn.
  EXPECT_EQ(ran, (std::vector<std::string>{"a0", "a1", "b0", "a2", "a3", "b1",
                                           "b2", "b3"}));
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueue, SingleTenantIsExactFifo) {
  FairQueue queue;
  std::vector<int> ran;
  for (int i = 0; i < 5; i++) {
    queue.Push([&ran, i] { ran.push_back(i); }, 0, 1, 0);
  }
  FairQueue::Item item;
  while (queue.Pop(&item)) item.job();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --- AsyncMutex DRR ----------------------------------------------------

// Parks interleaved waiters from two tenant groups behind a held lock,
// then releases it: every waiter unlocks into the next, so the single
// Unlock below cascades through the whole queue in DRR grant order.
TEST(AsyncMutexDrr, GrantOrderFollowsWeights) {
  runtime::AsyncMutex mu;
  sim::Detach(
      [](runtime::AsyncMutex* mu) -> sim::Task<void> { co_await mu->Lock(); }(
          &mu));
  ASSERT_TRUE(mu.locked());

  std::vector<uint32_t> order;
  auto wait = [&mu, &order](uint32_t tenant, uint32_t weight) {
    sim::Detach([](runtime::AsyncMutex* mu, std::vector<uint32_t>* order,
                   uint32_t tenant, uint32_t weight) -> sim::Task<void> {
      co_await mu->Lock(tenant, weight);
      order->push_back(tenant);
      mu->Unlock();
    }(&mu, &order, tenant, weight));
  };
  for (int i = 0; i < 6; i++) {
    wait(1, 3);
    wait(2, 1);
  }
  EXPECT_EQ(mu.queue_length(), 12u);
  mu.Unlock();
  EXPECT_FALSE(mu.locked());
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 1, 1, 2, 1, 1, 1, 2, 2, 2, 2, 2}));
}

TEST(AsyncMutexDrr, SingleTenantIsExactFifo) {
  runtime::AsyncMutex mu;
  sim::Detach(
      [](runtime::AsyncMutex* mu) -> sim::Task<void> { co_await mu->Lock(); }(
          &mu));
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim::Detach([](runtime::AsyncMutex* mu, std::vector<int>* order,
                   int id) -> sim::Task<void> {
      co_await mu->Lock();
      order->push_back(id);
      mu->Unlock();
    }(&mu, &order, i));
  }
  mu.Unlock();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --- end-to-end: ParallelNode fairness + VM fuel budgets ---------------

// Pure-CPU λasm spin: counts `iters` down to zero, returns empty. Burns
// ~5 fuel per iteration, no storage traffic.
std::shared_ptr<vm::Module> SpinModule(int iters) {
  char text[512];
  std::snprintf(text, sizeof(text), R"(
func spin export locals n
  push %d
  local.set n
loop:
  local.get n
  push 1
  sub
  local.tee n
  br_if loop
  push 0
  push 0
  ret
end
)",
                iters);
  auto module = vm::Assemble(text);
  LO_CHECK_MSG(module.ok(), "λasm spin failed to assemble");
  return std::make_shared<vm::Module>(std::move(*module));
}

void RegisterSpinType(runtime::TypeRegistry* types, int iters) {
  runtime::ObjectType type;
  type.name = "spin_t";
  type.methods["spin"] = runtime::MethodImpl{
      .kind = runtime::MethodKind::kReadWrite, .module = SpinModule(iters)};
  LO_CHECK(types->Register(std::move(type)).ok());
}

struct NodeFixture {
  explicit NodeFixture(TenantRegistry* tenants, size_t lanes, int spin_iters) {
    db_options.env = &env;
    db_options.serialize_access = true;
    db = std::move(*storage::DB::Open(db_options, "/db"));
    RegisterSpinType(&types, spin_iters);
    runtime::ParallelNodeOptions node_options;
    node_options.lanes = lanes;
    node_options.tenants = tenants;
    node = std::make_unique<runtime::ParallelNode>(db.get(), &types,
                                                   node_options);
  }

  storage::MemEnv env;
  storage::Options db_options;
  std::unique_ptr<storage::DB> db;
  runtime::TypeRegistry types;
  std::unique_ptr<runtime::ParallelNode> node;
};

// The fairness property the DRR lanes exist for: two tenants with
// weights 3:1 flood one lane from 8 threads; while both have backlog the
// executed shares must match the weights within 10%.
TEST(ParallelNodeFairness, WeightedSharesWithinTenPercent) {
  TenantRegistry registry;
  registry.Configure(1, TenantConfig{.weight = 3});
  registry.Configure(2, TenantConfig{.weight = 1});
  NodeFixture fix(&registry, /*lanes=*/1, /*spin_iters=*/1);

  constexpr size_t kJobsPerTenant = 1200;
  constexpr size_t kThreadsPerTenant = 4;
  static_assert(kJobsPerTenant % kThreadsPerTenant == 0);

  // Hold the single lane behind a gate while the submitters race, so the
  // DRR queue sees the full backlog before anything executes.
  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::future<void> release = gate_release.get_future();
  fix.node->RunOnLane("gate", [&](runtime::Runtime&) {
    gate_entered.set_value();
    release.wait();
  });
  gate_entered.get_future().wait();

  std::mutex order_mu;
  std::vector<TenantId> order;
  std::vector<std::thread> threads;
  for (TenantId tenant : {TenantId{1}, TenantId{2}}) {
    for (size_t t = 0; t < kThreadsPerTenant; t++) {
      threads.emplace_back([&, tenant] {
        for (size_t i = 0; i < kJobsPerTenant / kThreadsPerTenant; i++) {
          fix.node->RunOnLane(
              "gate",
              [&order_mu, &order, tenant](runtime::Runtime&) {
                std::lock_guard<std::mutex> lock(order_mu);
                order.push_back(tenant);
              },
              tenant);
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  gate_release.set_value();
  fix.node->Drain();

  ASSERT_EQ(order.size(), 2 * kJobsPerTenant);
  // Walk the execution order until one tenant drains; inside that prefix
  // both tenants always had backlog, so DRR should give 3:1.
  size_t a = 0, b = 0;
  for (TenantId tenant : order) {
    (tenant == 1 ? a : b)++;
    if (a == kJobsPerTenant || b == kJobsPerTenant) break;
  }
  ASSERT_GT(b, 0u);
  double ratio = static_cast<double>(a) / static_cast<double>(b);
  EXPECT_NEAR(ratio, 3.0, 0.3) << "a=" << a << " b=" << b;
  // Queue waits were recorded against both tenants.
  EXPECT_GT(registry.QueuePercentile(1, 0.5), 0);
  EXPECT_GT(registry.QueuePercentile(2, 0.5), 0);
}

// A long-running invocation is trapped mid-flight once its tenant's fuel
// window is dry — the VM's fuel tap surfaces kTenantThrottled as the
// invocation's status.
TEST(ParallelNodeFuel, VmInvocationTrappedWhenWindowDry) {
  TenantRegistry registry;
  // ~500k fuel per spin; the budget covers ~4% of one invocation.
  registry.Configure(7, TenantConfig{.fuel_per_window = 20'000});
  registry.Configure(8, TenantConfig{.fuel_per_window = 50'000'000});
  NodeFixture fix(&registry, /*lanes=*/2, /*spin_iters=*/100'000);
  ASSERT_TRUE(fix.node->CreateObject("o/1", "spin_t").get().ok());

  // The rich tenant completes and its fuel is metered.
  auto rich = fix.node->Invoke("o/1", "spin", "", {}, 8).get();
  EXPECT_TRUE(rich.ok()) << rich.status().ToString();
  EXPECT_GT(registry.fuel_used(8), 100'000u);

  // The capped tenant is cut off mid-invocation.
  auto poor = fix.node->Invoke("o/1", "spin", "", {}, 7).get();
  ASSERT_FALSE(poor.ok());
  EXPECT_TRUE(poor.status().IsTenantThrottled()) << poor.status().ToString();
  // It burned (at least) its window before the tap fired — and far less
  // than a full run: the trap really was mid-flight.
  EXPECT_GE(registry.fuel_used(7), 20'000u);
  EXPECT_LT(registry.fuel_used(7), 400'000u);

  // Unattributed traffic on the same node is never fuel-limited.
  auto legacy = fix.node->Invoke("o/1", "spin", "").get();
  EXPECT_TRUE(legacy.ok()) << legacy.status().ToString();
}

}  // namespace
}  // namespace lo::tenant
