// Tests for the cross-object transaction extension (paper §7 future
// work): atomicity across objects, OCC validation/abort, lock-ordered
// commit (no deadlocks), interaction with the result cache.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/runtime.h"
#include "runtime/transaction.h"
#include "storage/env.h"

namespace lo::runtime {
namespace {

using sim::Detach;
using sim::Task;

class TransactionTest : public ::testing::Test {
 public:
  TransactionTest() {
    storage::Options options;
    options.env = &env_;
    db_ = std::move(*storage::DB::Open(options, "/db"));
    ObjectType type;
    type.name = "cell";
    type.methods["get"] = MethodImpl{
        .kind = MethodKind::kReadOnly,
        .deterministic = true,
        .native = [](InvocationContext& ctx, std::string)
            -> Task<Result<std::string>> { co_return co_await ctx.Get("v"); }};
    type.methods["set"] = MethodImpl{
        .kind = MethodKind::kReadWrite,
        .native = [](InvocationContext& ctx, std::string arg)
            -> Task<Result<std::string>> {
          LO_CO_RETURN_IF_ERROR(co_await ctx.Set("v", arg));
          co_return arg;
        }};
    EXPECT_TRUE(types_.Register(std::move(type)).ok());
    runtime_ = std::make_unique<Runtime>(&sim_, db_.get(), &types_);
    // Async commits so concurrent transactions interleave.
    runtime_->SetCommitSink([this](const ObjectId&, storage::WriteBatch batch,
                                   obs::TraceContext) -> Task<Status> {
      co_await sim_.Sleep(sim::Micros(80));
      co_return db_->Write({.sync = true}, &batch);
    });
    for (const char* oid : {"cell/a", "cell/b", "cell/c"}) {
      bool done = false;
      Detach([](Runtime* rt, std::string oid, bool* done) -> Task<void> {
        (void)co_await rt->CreateObject(std::move(oid), "cell");
        *done = true;
      }(runtime_.get(), oid, &done));
      sim_.Run();
      EXPECT_TRUE(done);
    }
  }

  template <typename Fn>
  void RunSim(Fn&& body) {
    bool done = false;
    Detach([](Fn body, bool* done) -> Task<void> {
      co_await body();
      *done = true;
    }(std::forward<Fn>(body), &done));
    sim_.Run();
    ASSERT_TRUE(done);
  }

  std::string Read(const std::string& oid) {
    auto value = runtime_->StorageRead(FieldKey(oid, "v"), nullptr);
    return value.ok() ? *value : "(" + value.status().ToString() + ")";
  }

  sim::Simulator sim_{51};
  storage::MemEnv env_;
  std::unique_ptr<storage::DB> db_;
  TypeRegistry types_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(TransactionTest, AtomicMultiObjectCommit) {
  RunSim([&]() -> Task<void> {
    Transaction txn(runtime_.get());
    txn.Set("cell/a", "v", "1");
    txn.Set("cell/b", "v", "2");
    txn.Set("cell/c", "v", "3");
    Status s = co_await txn.Commit();
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(txn.committed());
  });
  EXPECT_EQ(Read("cell/a"), "1");
  EXPECT_EQ(Read("cell/b"), "2");
  EXPECT_EQ(Read("cell/c"), "3");
}

TEST_F(TransactionTest, AbortDiscardsEverything) {
  RunSim([&]() -> Task<void> {
    Transaction txn(runtime_.get());
    txn.Set("cell/a", "v", "doomed");
    txn.Abort();
    co_return;
  });
  EXPECT_EQ(Read("cell/a"), "(NotFound)");
}

TEST_F(TransactionTest, ReadsSeeOwnWritesAndRecordReadSet) {
  RunSim([&]() -> Task<void> {
    Transaction txn(runtime_.get());
    auto before = co_await txn.Get("cell/a", "v");
    EXPECT_TRUE(before.status().IsNotFound());
    txn.Set("cell/a", "v", "mine");
    auto after = co_await txn.Get("cell/a", "v");
    EXPECT_TRUE(after.ok());
    if (after.ok()) EXPECT_EQ(*after, "mine");
    Status s = co_await txn.Commit();
    EXPECT_TRUE(s.ok());
  });
}

TEST_F(TransactionTest, StaleReadSetAborts) {
  RunSim([&]() -> Task<void> {
    Transaction txn(runtime_.get());
    auto observed = co_await txn.Get("cell/a", "v");  // observes "absent"
    EXPECT_TRUE(observed.status().IsNotFound());
    // A foreign write sneaks in between read and commit.
    auto foreign = co_await runtime_->Invoke("cell/a", "set", "sniped");
    EXPECT_TRUE(foreign.ok());
    txn.Set("cell/b", "v", "derived-from-a");
    Status s = co_await txn.Commit();
    EXPECT_EQ(s.code(), StatusCode::kAborted);
    EXPECT_FALSE(txn.committed());
  });
  // The aborted transaction wrote nothing.
  EXPECT_EQ(Read("cell/b"), "(NotFound)");
  EXPECT_EQ(Read("cell/a"), "sniped");
}

TEST_F(TransactionTest, ConcurrentOpposingTransfersDoNotDeadlock) {
  // txn1 writes a then b; txn2 writes b then a. Lock-ordered commit
  // guarantees progress; OCC guarantees one of them aborts if they
  // actually conflicted on reads.
  RunSim([&]() -> Task<void> {
    auto r1 = co_await runtime_->Invoke("cell/a", "set", "100");
    auto r2 = co_await runtime_->Invoke("cell/b", "set", "100");
    EXPECT_TRUE(r1.ok());
    EXPECT_TRUE(r2.ok());
  });
  int committed = 0, aborted = 0, done = 0;
  auto transfer = [](Runtime* rt, std::string from, std::string to,
                     int* committed, int* aborted, int* done) -> Task<void> {
    Transaction txn(rt);
    auto from_v = co_await txn.Get(from, "v");
    auto to_v = co_await txn.Get(to, "v");
    EXPECT_TRUE(from_v.ok());
    EXPECT_TRUE(to_v.ok());
    txn.Set(from, "v", std::to_string(std::stoi(*from_v) - 10));
    txn.Set(to, "v", std::to_string(std::stoi(*to_v) + 10));
    Status s = co_await txn.Commit();
    if (s.ok()) {
      (*committed)++;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kAborted);
      (*aborted)++;
    }
    (*done)++;
  };
  Detach(transfer(runtime_.get(), "cell/a", "cell/b", &committed, &aborted, &done));
  Detach(transfer(runtime_.get(), "cell/b", "cell/a", &committed, &aborted, &done));
  sim_.Run();
  ASSERT_EQ(done, 2);
  EXPECT_EQ(committed + aborted, 2);
  EXPECT_GE(committed, 1);  // at least one made progress
  // Money conserved regardless of which committed.
  EXPECT_EQ(std::stoi(Read("cell/a")) + std::stoi(Read("cell/b")), 200);
}

TEST_F(TransactionTest, ManyConcurrentIncrementsConserveTotal) {
  RunSim([&]() -> Task<void> {
    auto r = co_await runtime_->Invoke("cell/a", "set", "0");
    EXPECT_TRUE(r.ok());
  });
  // 20 transactional increments with retry-on-abort: the final value
  // must be exactly 20 (OCC serializes them).
  int done = 0;
  uint64_t total_aborts = 0;
  for (int i = 0; i < 20; i++) {
    Detach([](Runtime* rt, sim::Simulator* sim, int* done,
              uint64_t* total_aborts) -> Task<void> {
      for (int attempt = 0; attempt < 100; attempt++) {
        Transaction txn(rt);
        auto v = co_await txn.Get("cell/a", "v");
        if (!v.ok()) {
          txn.Abort();
          co_await sim->Sleep(sim::Micros(50));
          continue;
        }
        txn.Set("cell/a", "v", std::to_string(std::stoi(*v) + 1));
        Status s = co_await txn.Commit();
        if (s.ok()) break;
        (*total_aborts)++;
        co_await sim->Sleep(static_cast<sim::Duration>(
            sim->rng().Uniform(static_cast<uint64_t>(sim::Micros(200)))));
      }
      (*done)++;
    }(runtime_.get(), &sim_, &done, &total_aborts));
  }
  sim_.Run();
  ASSERT_EQ(done, 20);
  EXPECT_EQ(Read("cell/a"), "20");
  // Contention on one cell must have caused OCC conflicts.
  EXPECT_GT(total_aborts, 0u);
}

TEST_F(TransactionTest, CommitInvalidatesResultCache) {
  RunSim([&]() -> Task<void> {
    auto r = co_await runtime_->Invoke("cell/a", "set", "old");
    EXPECT_TRUE(r.ok());
    auto cached = co_await runtime_->Invoke("cell/a", "get", "");
    EXPECT_TRUE(cached.ok());  // populates the cache
    Transaction txn(runtime_.get());
    txn.Set("cell/a", "v", "new");
    Status s = co_await txn.Commit();
    EXPECT_TRUE(s.ok());
    auto after = co_await runtime_->Invoke("cell/a", "get", "");
    EXPECT_TRUE(after.ok());
    if (after.ok()) EXPECT_EQ(*after, "new");  // not the stale cached "old"
  });
}

}  // namespace
}  // namespace lo::runtime
