// LambdaVM tests: assembler, module codec + validation, interpreter
// semantics, sandbox (bounds/fuel/stack) enforcement, host ABI, and a
// random-program fuzz check that nothing escapes the sandbox.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/disassembler.h"
#include "vm/interpreter.h"
#include "vm/module.h"

namespace lo::vm {
namespace {

/// Host backed by a std::map; records call counts.
class FakeHost : public HostApi {
 public:
  sim::Task<Result<std::string>> KvGet(std::string_view key) override {
    gets++;
    auto it = kv.find(std::string(key));
    if (it == kv.end()) co_return Status::NotFound("");
    co_return it->second;
  }
  sim::Task<Status> KvPut(std::string_view key, std::string_view value) override {
    puts++;
    kv[std::string(key)] = std::string(value);
    co_return Status::OK();
  }
  sim::Task<Status> KvDelete(std::string_view key) override {
    kv.erase(std::string(key));
    co_return Status::OK();
  }
  sim::Task<Result<std::string>> InvokeObject(std::string_view oid,
                                              std::string_view fn,
                                              std::string_view arg) override {
    invocations.push_back(std::string(oid) + "." + std::string(fn) + "(" +
                          std::string(arg) + ")");
    co_return std::string("remote-result");
  }
  uint64_t TimeMillis() override { return 1234; }
  void DebugLog(std::string_view m) override { logs.push_back(std::string(m)); }

  std::map<std::string, std::string> kv;
  std::vector<std::string> invocations;
  std::vector<std::string> logs;
  int gets = 0;
  int puts = 0;
};

/// Assembles + runs one exported function to completion (no sim events
/// are pending in these tests, so the task finishes synchronously).
Result<std::string> RunProgram(std::string_view source, std::string_view fn,
                               std::string arg, HostApi* host,
                               VmLimits limits = {}, VmMetrics* metrics = nullptr) {
  auto module = Assemble(source);
  if (!module.ok()) return module.status();
  Instance instance(&*module, limits);
  sim::Simulator sim;
  Result<std::string> out = Status::Unavailable("did not finish");
  sim::Detach([](Instance& inst, std::string_view fn, std::string arg,
                 HostApi* host, Result<std::string>* out) -> sim::Task<void> {
    *out = co_await inst.Invoke(fn, std::move(arg), host);
  }(instance, fn, std::move(arg), host, &out));
  sim.Run();
  if (metrics != nullptr) *metrics = instance.metrics();
  return out;
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_FALSE(Assemble("bogus").ok());
  EXPECT_FALSE(Assemble("func f\n push\nend").ok());        // missing operand
  EXPECT_FALSE(Assemble("func f\n br nowhere\nend").ok());  // unknown label
  EXPECT_FALSE(Assemble("func f\n call missing\nend").ok());
  EXPECT_FALSE(Assemble("func f\n local.get x\nend").ok());
  EXPECT_FALSE(Assemble("func f\n push 1\n").ok());  // no end
  EXPECT_FALSE(Assemble("data d 0 \"unterminated").ok());
  EXPECT_FALSE(Assemble("func f\nend\nfunc f\nend").ok());  // duplicate
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto r = Assemble("memory 1024\n\nfunc f\n frobnicate\nend");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos);
}

TEST(Module, SerializeDeserializeRoundTrip) {
  auto module = Assemble(R"(
memory 4096
data greeting 128 "hello"
func helper params a b results 1
  local.get a
  local.get b
  add
  return
end
func main export
  push @greeting
  push #greeting
  ret
end
)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  std::string bytes = module->Serialize();
  auto restored = Module::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->functions().size(), 2u);
  EXPECT_TRUE(restored->FindExport("main").ok());
  EXPECT_FALSE(restored->FindExport("helper").ok());  // not exported
  EXPECT_EQ(restored->Serialize(), bytes);
}

TEST(Module, DeserializeRejectsCorruption) {
  auto module = Assemble("func main export\n push 1\n drop\nend");
  ASSERT_TRUE(module.ok());
  std::string bytes = module->Serialize();
  EXPECT_FALSE(Module::Deserialize("garbage").ok());
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(Module::Deserialize(truncated).ok());
}

TEST(Module, ValidatorRejectsOutOfRange) {
  // Hand-built function with a bad branch target.
  Function fn;
  fn.name = "f";
  fn.code = {{Op::kBr, 99}};
  EXPECT_FALSE(Module::Create({fn}, {}, 1024).ok());
  fn.code = {{Op::kLocalGet, 3}};
  EXPECT_FALSE(Module::Create({fn}, {}, 1024).ok());
  fn.code = {{Op::kCall, 7}};
  EXPECT_FALSE(Module::Create({fn}, {}, 1024).ok());
  // Data segment outside memory.
  EXPECT_FALSE(Module::Create({}, {DataSegment{2000, "xxxx"}}, 1024).ok());
}

TEST(Interpreter, ArithmeticViaRetBuffer) {
  FakeHost host;
  // Computes (7*6)+5 and stores the byte at address 0, returns 1 byte.
  auto result = RunProgram(R"(
func main export locals v
  push 7
  push 6
  mul
  push 5
  add
  local.set v
  push 0
  local.get v
  store8
  push 0
  push 1
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>((*result)[0]), 47);
}

TEST(Interpreter, LoopsAndBranches) {
  FakeHost host;
  // Sums 1..100 into a 64-bit slot, returns it as 8 bytes.
  auto result = RunProgram(R"(
func main export locals i sum
  push 1
  local.set i
loop:
  local.get sum
  local.get i
  add
  local.set sum
  local.get i
  push 1
  add
  local.tee i
  push 100
  le_u
  br_if loop
  push 0
  local.get sum
  store64
  push 0
  push 8
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 8u);
  uint64_t sum = 0;
  memcpy(&sum, result->data(), 8);
  EXPECT_EQ(sum, 5050u);
}

TEST(Interpreter, FunctionCallsWithParamsAndResults) {
  FakeHost host;
  auto result = RunProgram(R"(
func square params x results 1
  local.get x
  local.get x
  mul
  return
end
func main export locals v
  push 9
  call square
  local.set v
  push 0
  local.get v
  store64
  push 0
  push 8
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t v = 0;
  memcpy(&v, result->data(), 8);
  EXPECT_EQ(v, 81u);
}

TEST(Interpreter, ArgumentRoundTrip) {
  FakeHost host;
  // Echo: copy arg into memory, return it.
  auto result = RunProgram(R"(
func main export locals len
  push 0
  push 1024
  arg
  local.set len
  push 0
  local.get len
  ret
end
)", "main", "payload-123", &host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "payload-123");
}

TEST(Interpreter, KvPutGetThroughHost) {
  FakeHost host;
  auto result = RunProgram(R"(
data key 0 "counter"
data val 16 "fortytwo"
func main export locals len
  push @key
  push #key
  push @val
  push #val
  kv.put
  push @key
  push #key
  push 256
  push 64
  kv.get
  local.set len
  push 256
  local.get len
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "fortytwo");
  EXPECT_EQ(host.kv["counter"], "fortytwo");
  EXPECT_EQ(host.puts, 1);
  EXPECT_EQ(host.gets, 1);
}

TEST(Interpreter, KvGetMissingPushesSentinel) {
  FakeHost host;
  auto result = RunProgram(R"(
data key 0 "absent"
func main export locals rc
  push @key
  push #key
  push 64
  push 32
  kv.get
  local.set rc
  push 128
  local.get rc
  store64
  push 128
  push 8
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok());
  uint64_t rc = 0;
  memcpy(&rc, result->data(), 8);
  EXPECT_EQ(rc, kKvNotFound);
}

TEST(Interpreter, InvokeReachesHost) {
  FakeHost host;
  auto result = RunProgram(R"(
data oid 0 "user/42"
data fn 16 "store_post"
data arg 32 "hello"
func main export locals len
  push @oid
  push #oid
  push @fn
  push #fn
  push @arg
  push #arg
  push 64
  push 64
  invoke
  local.set len
  push 64
  local.get len
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "remote-result");
  ASSERT_EQ(host.invocations.size(), 1u);
  EXPECT_EQ(host.invocations[0], "user/42.store_post(hello)");
}

TEST(Interpreter, TimeComesFromHost) {
  FakeHost host;
  auto result = RunProgram(R"(
func main export
  push 0
  time
  store64
  push 0
  push 8
  ret
end
)", "main", "", &host);
  ASSERT_TRUE(result.ok());
  uint64_t t = 0;
  memcpy(&t, result->data(), 8);
  EXPECT_EQ(t, 1234u);
}

TEST(Disassembler, RoundTripsStructurally) {
  auto module = Assemble(R"(
memory 8192
data greeting 128 "hi\n\x00there"
func helper params a b results 1
  local.get a
  local.get b
  add
  return
end
func main export locals n
  push @greeting
  local.set n
loop:
  local.get n
  push 1
  sub
  local.tee n
  br_if loop
  push 3
  push 4
  call helper
  drop
  push 0
  push 0
  ret
end
)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  std::string text = Disassemble(*module);
  auto again = Assemble(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\nsource:\n" << text;
  // Structural identity: identical binary encoding.
  EXPECT_EQ(again->Serialize(), module->Serialize()) << text;
  // And a second round-trip is a fixed point.
  EXPECT_EQ(Disassemble(*again), text);
}

// ------------------------------------------------------------- sandbox

TEST(Sandbox, OutOfBoundsLoadTraps) {
  FakeHost host;
  auto result = RunProgram(R"(
memory 1024
func main export
  push 99999999
  load64
  drop
end
)", "main", "", &host);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, OutOfBoundsStoreTraps) {
  FakeHost host;
  auto result = RunProgram(R"(
memory 1024
func main export
  push 1020
  push 7
  store64
end
)", "main", "", &host);  // 1020 + 8 > 1024
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, FuelExhaustionTrapsInfiniteLoop) {
  FakeHost host;
  VmMetrics metrics;
  auto result = RunProgram(R"(
func main export
loop:
  br loop
end
)", "main", "", &host, VmLimits{.fuel = 10000}, &metrics);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
  EXPECT_LE(metrics.fuel_used, 10000u);
}

TEST(Sandbox, StackUnderflowTraps) {
  FakeHost host;
  auto result = RunProgram("func main export\n add\nend", "main", "", &host);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, CallDepthLimitTraps) {
  FakeHost host;
  auto result = RunProgram(R"(
func recurse
  call recurse
end
func main export
  call recurse
end
)", "main", "", &host, VmLimits{.fuel = 1 << 20, .max_call_depth = 32});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, DivisionByZeroTraps) {
  FakeHost host;
  auto result = RunProgram(R"(
func main export
  push 1
  push 0
  div_u
  drop
end
)", "main", "", &host);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, UnreachableTraps) {
  FakeHost host;
  auto result = RunProgram("func main export\n unreachable\nend", "main", "", &host);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

TEST(Sandbox, MemCopyOutOfBoundsTraps) {
  FakeHost host;
  auto result = RunProgram(R"(
memory 1024
func main export
  push 0
  push 512
  push 4096
  mem.copy
end
)", "main", "", &host);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTrap());
}

// Fuzz: random instruction streams must either run to completion or trap
// cleanly — never crash, never touch memory outside the sandbox, never
// run past the fuel budget.
class VmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VmFuzz, RandomProgramsStayInSandbox) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  FakeHost host;
  for (int iteration = 0; iteration < 300; iteration++) {
    // Random code using the non-host opcode space.
    size_t len = rng.Uniform(64) + 1;
    std::vector<Instruction> code;
    for (size_t i = 0; i < len; i++) {
      Instruction instr;
      instr.op = static_cast<Op>(rng.Uniform(static_cast<uint8_t>(Op::kOpCount)));
      switch (instr.op) {
        case Op::kBr:
        case Op::kBrIf:
          instr.imm = rng.Uniform(len);
          break;
        case Op::kLocalGet:
        case Op::kLocalSet:
        case Op::kLocalTee:
          instr.imm = rng.Uniform(4);
          break;
        case Op::kCall:
          instr.imm = 0;  // self-recursion; bounded by call depth
          break;
        default:
          instr.imm = rng.Next() >> rng.Uniform(64);
          break;
      }
      code.push_back(instr);
    }
    Function fn;
    fn.name = "main";
    fn.exported = true;
    fn.num_locals = 4;
    fn.code = std::move(code);
    auto module = Module::Create({fn}, {}, 4096);
    ASSERT_TRUE(module.ok());  // indices were generated in range

    Instance instance(&*module, VmLimits{.fuel = 50000, .max_call_depth = 8});
    sim::Simulator sim;
    Result<std::string> out = std::string();
    bool finished = false;
    sim::Detach([](Instance& inst, HostApi* host, Result<std::string>* out,
                   bool* finished) -> sim::Task<void> {
      *out = co_await inst.Invoke("main", "fuzz-arg", host);
      *finished = true;
    }(instance, &host, &out, &finished));
    sim.Run();
    ASSERT_TRUE(finished);  // ran to completion or trapped; never hung
    ASSERT_LE(instance.metrics().fuel_used, 50000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace lo::vm
