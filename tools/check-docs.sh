#!/usr/bin/env bash
# Verifies that every relative markdown link in the repo's documentation
# resolves to an existing file, so the docs index cannot rot silently.
# Runs as part of the default ctest suite (test name: check_docs).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"

broken=$(
  for md in "$root"/*.md "$root"/docs/*.md; do
    [ -f "$md" ] || continue
    dir="$(dirname "$md")"
    # Every [text](target); external URLs and in-page anchors excluded.
    # Fenced code blocks are stripped first: C++ lambdas (`[](...)`)
    # would otherwise read as markdown links.
    awk '/^[[:space:]]*```/ { in_code = !in_code; next } !in_code' "$md" |
      grep -oE '\]\([^)#? ]+' | sed 's/^](//' | while read -r link; do
      case "$link" in
        http://* | https://* | mailto:*) continue ;;
      esac
      if [ ! -e "$dir/$link" ]; then
        echo "BROKEN: ${md#"$root"/} -> $link"
      fi
    done
  done
)

if [ -n "$broken" ]; then
  echo "$broken"
  exit 1
fi
echo "all documentation links resolve"
