#!/usr/bin/env bash
# Documentation drift checks, run as part of the default ctest suite
# (test name: check_docs):
#   1. every relative markdown link resolves to an existing file;
#   2. every LO_* environment knob referenced anywhere in the code
#      appears in docs/tuning.md, the canonical knob table.
set -u

# Resolve the repo root from the script's own (symlink-free) location,
# never from the caller's working directory — ctest runs tests from the
# build tree, and a cwd-relative root silently skipped docs/ there.
script="${BASH_SOURCE[0]:-$0}"
while [ -h "$script" ]; do
  dir="$(cd "$(dirname "$script")" && pwd)"
  script="$(readlink "$script")"
  case "$script" in
    /*) ;;
    *) script="$dir/$script" ;;
  esac
done
root="$(cd "$(dirname "$script")/.." && pwd)"

broken=$(
  # Every markdown file in the tree, however deeply nested, excluding
  # build trees and VCS internals.
  find "$root" \
    -name '.git' -prune -o -name 'build*' -prune -o \
    -name '*.md' -print | while read -r md; do
    dir="$(dirname "$md")"
    # Every [text](target); external URLs and in-page anchors excluded.
    # Fenced code blocks are stripped first: C++ lambdas (`[](...)`)
    # would otherwise read as markdown links.
    awk '/^[[:space:]]*```/ { in_code = !in_code; next } !in_code' "$md" |
      grep -oE '\]\([^)#? ]+' | sed 's/^](//' | while read -r link; do
      case "$link" in
        http://* | https://* | mailto:*) continue ;;
      esac
      if [ ! -e "$dir/$link" ]; then
        echo "BROKEN: ${md#"$root"/} -> $link"
      fi
    done
  done
)

if [ -n "$broken" ]; then
  echo "$broken"
  exit 1
fi
echo "all documentation links resolve"

# Knob drift: every LO_* environment variable the code reads must be
# documented in docs/tuning.md. Only quoted literals in C++ sources
# count — a quoted LO_ name is a getenv-style knob; bare LO_ tokens are
# macros (LO_CHECK, LO_SERVER_BIN_DEFAULT) and compile-time
# identifiers, not knobs.
tuning="$root/docs/tuning.md"
if [ ! -f "$tuning" ]; then
  echo "MISSING: docs/tuning.md (canonical knob table)"
  exit 1
fi
missing=$(
  grep -rhoE --include='*.cpp' --include='*.cc' --include='*.h' \
    '"LO_[A-Z_]+"' \
    "$root/src" "$root/bench" "$root/tools" "$root/tests" 2>/dev/null |
    tr -d '"' | sort -u | while read -r knob; do
    if ! grep -q "$knob" "$tuning"; then
      echo "UNDOCUMENTED KNOB: $knob (add it to docs/tuning.md)"
    fi
  done
)
if [ -n "$missing" ]; then
  echo "$missing"
  exit 1
fi
echo "all LO_* knobs are documented in docs/tuning.md"
