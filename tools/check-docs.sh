#!/usr/bin/env bash
# Verifies that every relative markdown link in the repo's documentation
# resolves to an existing file, so the docs index cannot rot silently.
# Runs as part of the default ctest suite (test name: check_docs).
set -u

# Resolve the repo root from the script's own (symlink-free) location,
# never from the caller's working directory — ctest runs tests from the
# build tree, and a cwd-relative root silently skipped docs/ there.
script="${BASH_SOURCE[0]:-$0}"
while [ -h "$script" ]; do
  dir="$(cd "$(dirname "$script")" && pwd)"
  script="$(readlink "$script")"
  case "$script" in
    /*) ;;
    *) script="$dir/$script" ;;
  esac
done
root="$(cd "$(dirname "$script")/.." && pwd)"

broken=$(
  # Every markdown file in the tree, however deeply nested, excluding
  # build trees and VCS internals.
  find "$root" \
    -name '.git' -prune -o -name 'build*' -prune -o \
    -name '*.md' -print | while read -r md; do
    dir="$(dirname "$md")"
    # Every [text](target); external URLs and in-page anchors excluded.
    # Fenced code blocks are stripped first: C++ lambdas (`[](...)`)
    # would otherwise read as markdown links.
    awk '/^[[:space:]]*```/ { in_code = !in_code; next } !in_code' "$md" |
      grep -oE '\]\([^)#? ]+' | sed 's/^](//' | while read -r link; do
      case "$link" in
        http://* | https://* | mailto:*) continue ;;
      esac
      if [ ! -e "$dir/$link" ]; then
        echo "BROKEN: ${md#"$root"/} -> $link"
      fi
    done
  done
)

if [ -n "$broken" ]; then
  echo "$broken"
  exit 1
fi
echo "all documentation links resolve"
