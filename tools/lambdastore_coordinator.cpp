// lambdastore-coordinator: the cluster control plane as a real process.
//
// Hosts clusterd::CoordinatorServer — owns the authoritative versioned
// ClusterView (coord::ClusterState microshard directory + node address
// book), registers lambdastore-server processes as they come up,
// collects their per-window load reports, and drives the Akkio-style
// rebalancer: when one node's load exceeds --skew times the mean it
// orders live migrations of that node's hottest objects toward the
// coldest node.
//
// Flags:
//   --port=N                listen port; 0 = ephemeral (default)
//   --hash-servers=N        size of the pinned hash space (default 1);
//                           set to the *initial* server count so elastic
//                           add-a-node never remaps hash placements
//   --rebalance-interval-ms=N  rebalancer cadence (default 500)
//   --skew=F                hottest/mean load ratio that triggers a
//                           round (default 2.0)
//   --min-requests=N        per-window cluster total below which the
//                           rebalancer stays idle (default 50)
//   --migrations-per-round=N  hottest objects moved per round (default 4)
//   --no-rebalance          disable the rebalancer (manual migration only)
//
// Prints "READY port=<p>" once listening; exits 0 on SIGINT/SIGTERM or
// an "admin.shutdown" RPC.
#include <signal.h>
#include <stdio.h>
#include <string.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "clusterd/coordinator.h"

namespace {

struct Flags {
  uint16_t port = 0;
  uint32_t hash_servers = 1;
  int64_t rebalance_interval_ms = 500;
  double skew = 2.0;
  uint64_t min_requests = 50;
  size_t migrations_per_round = 4;
  bool rebalance = true;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string value;
    if (ParseFlag(argv[i], "port", &value)) {
      flags.port = static_cast<uint16_t>(std::stoi(value));
    } else if (ParseFlag(argv[i], "hash-servers", &value)) {
      flags.hash_servers = static_cast<uint32_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "rebalance-interval-ms", &value)) {
      flags.rebalance_interval_ms = std::stoll(value);
    } else if (ParseFlag(argv[i], "skew", &value)) {
      flags.skew = std::stod(value);
    } else if (ParseFlag(argv[i], "min-requests", &value)) {
      flags.min_requests = std::stoull(value);
    } else if (ParseFlag(argv[i], "migrations-per-round", &value)) {
      flags.migrations_per_round = static_cast<size_t>(std::stoul(value));
    } else if (strcmp(argv[i], "--no-rebalance") == 0) {
      flags.rebalance = false;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  sigset_t sigmask;
  sigemptyset(&sigmask);
  sigaddset(&sigmask, SIGINT);
  sigaddset(&sigmask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigmask, nullptr);

  lo::clusterd::CoordinatorServerOptions options;
  options.port = flags.port;
  options.hash_servers = flags.hash_servers;
  options.rebalance_enabled = flags.rebalance;
  options.rebalance_interval_ms = flags.rebalance_interval_ms;
  options.rebalance_skew = flags.skew;
  options.rebalance_min_requests = flags.min_requests;
  options.migrations_per_round = flags.migrations_per_round;

  lo::clusterd::CoordinatorServer coordinator(options);
  lo::Status started = coordinator.Start();
  if (!started.ok()) {
    fprintf(stderr, "coordinator start: %s\n", started.ToString().c_str());
    return 1;
  }
  printf("READY port=%u\n", coordinator.port());
  fflush(stdout);

  struct timespec poll_interval = {0, 50'000'000};  // 50ms
  while (!coordinator.shutdown_requested()) {
    int sig = sigtimedwait(&sigmask, nullptr, &poll_interval);
    if (sig == SIGINT || sig == SIGTERM) break;
  }
  coordinator.Shutdown();
  return 0;
}
