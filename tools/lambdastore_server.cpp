// lambdastore-server: one LambdaStore node as a real process.
//
// Hosts runtime::ParallelNode (execution lanes + WAL group commit) behind
// net::RpcServer, speaking the shared frame wire format. This is the
// server half of the LO_NET=real bench path: the harness (or
// net::RemoteClient) connects over loopback TCP and drives the same
// "lambda.invoke"/"lambda.create" services the simulated cluster serves.
//
// Invocations complete asynchronously: the RPC handler decodes the
// payload and enqueues on the object's lane with ParallelNode::
// InvokeAsync; the lane thread runs the method, waits for the group
// commit, and fires the Responder, which marshals the response back to
// the server's loop thread. The handler itself never blocks, so one loop
// thread feeds every lane. Requests whose frame deadline expired — on
// arrival or while queued behind a busy lane — are shed with Timeout
// instead of executed.
//
// Flags:
//   --port=N         listen port; 0 = ephemeral (default; also LO_NET_PORT)
//   --db=PATH        persist under PATH with PosixEnv; default in-memory
//   --lanes=N        execution lanes (default 8)
//   --seed-users=N   pre-seed a ReTwis social graph with N users
//   --seed-posts=N   initial posts per user for the seeded graph
//   --block-cache-mb=N  SSTable block cache size (0 = off; default 8 MiB)
//   --seed=N         workload generator seed (default 42)
//   --gc-bytes=N     group-commit batch size cap
//   --gc-delay-us=N  group-commit batch delay
//
// Prints "READY port=<p>" on stdout once listening (the harness and the
// loopback smoke test parse it), then serves until SIGINT/SIGTERM or an
// "admin.shutdown" RPC, and exits 0 after a clean drain.
#include <signal.h>
#include <stdio.h>
#include <string.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/coding.h"
#include "common/log.h"
#include "net/rpc_server.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"
#include "runtime/executor.h"
#include "storage/db.h"
#include "storage/env.h"

namespace {

struct Flags {
  uint16_t port = 0;
  std::string db_path;  // empty = MemEnv
  size_t lanes = 8;
  uint64_t seed_users = 0;
  uint64_t seed_posts = 10;
  uint64_t seed = 42;
  int64_t gc_bytes = -1;
  int64_t gc_delay_us = -1;
  int64_t block_cache_mb = -1;  // -1 = DB default; 0 = off
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  if (const char* env_port = std::getenv("LO_NET_PORT")) {
    flags.port = static_cast<uint16_t>(std::atoi(env_port));
  }
  for (int i = 1; i < argc; i++) {
    std::string value;
    if (ParseFlag(argv[i], "port", &value)) {
      flags.port = static_cast<uint16_t>(std::stoi(value));
    } else if (ParseFlag(argv[i], "db", &value)) {
      flags.db_path = value;
    } else if (ParseFlag(argv[i], "lanes", &value)) {
      flags.lanes = static_cast<size_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "seed-users", &value)) {
      flags.seed_users = std::stoull(value);
    } else if (ParseFlag(argv[i], "seed-posts", &value)) {
      flags.seed_posts = std::stoull(value);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "gc-bytes", &value)) {
      flags.gc_bytes = std::stoll(value);
    } else if (ParseFlag(argv[i], "gc-delay-us", &value)) {
      flags.gc_delay_us = std::stoll(value);
    } else if (ParseFlag(argv[i], "block-cache-mb", &value)) {
      flags.block_cache_mb = std::stoll(value);
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      exit(2);
    }
  }
  return flags;
}

bool DecodeInvokePayload(std::string_view payload, std::string_view* oid,
                         std::string_view* method, std::string_view* argument,
                         std::string_view* token) {
  lo::Reader reader{payload};
  return reader.GetLengthPrefixed(oid) && reader.GetLengthPrefixed(method) &&
         reader.GetLengthPrefixed(argument) && reader.GetLengthPrefixed(token);
}

bool DecodeCreatePayload(std::string_view payload, std::string_view* oid,
                         std::string_view* type_name, std::string_view* token) {
  lo::Reader reader{payload};
  return reader.GetLengthPrefixed(oid) && reader.GetLengthPrefixed(type_name) &&
         reader.GetLengthPrefixed(token);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and only the main thread (via sigtimedwait below)
  // ever observes them.
  sigset_t sigmask;
  sigemptyset(&sigmask);
  sigaddset(&sigmask, SIGINT);
  sigaddset(&sigmask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigmask, nullptr);

  lo::storage::MemEnv mem_env;
  lo::storage::PosixEnv posix_env;
  lo::storage::Options db_options;
  db_options.env = flags.db_path.empty()
                       ? static_cast<lo::storage::Env*>(&mem_env)
                       : static_cast<lo::storage::Env*>(&posix_env);
  db_options.serialize_access = true;  // lanes + committer share the DB
  if (flags.block_cache_mb >= 0) {
    db_options.block_cache_bytes = static_cast<size_t>(flags.block_cache_mb)
                                   << 20;
  }
  std::string db_name = flags.db_path.empty() ? "/db" : flags.db_path;
  auto opened = lo::storage::DB::Open(db_options, db_name);
  if (!opened.ok()) {
    fprintf(stderr, "DB::Open(%s): %s\n", db_name.c_str(),
            opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<lo::storage::DB> db = std::move(*opened);

  lo::runtime::TypeRegistry types;
  LO_CHECK(lo::retwis::RegisterUserType(&types, /*use_vm=*/true).ok());

  if (flags.seed_users > 0) {
    lo::retwis::WorkloadConfig config;
    config.num_users = flags.seed_users;
    config.initial_posts_per_user = flags.seed_posts;
    config.seed = flags.seed;
    lo::retwis::Workload workload(config);
    lo::Status seeded = workload.SeedDb(db.get());
    if (!seeded.ok()) {
      fprintf(stderr, "SeedDb: %s\n", seeded.ToString().c_str());
      return 1;
    }
  }

  lo::runtime::ParallelNodeOptions node_options;
  node_options.lanes = flags.lanes;
  if (flags.gc_bytes > 0) {
    node_options.group_commit.max_batch_bytes = static_cast<size_t>(flags.gc_bytes);
  }
  if (flags.gc_delay_us >= 0) {
    node_options.group_commit.max_batch_delay_us = flags.gc_delay_us;
  }

  std::atomic<bool> shutdown_requested{false};

  // Declared after `node_holder` scope note: the server is constructed
  // first and destructed last, because lane jobs hold Responders that
  // reference it; Drain() below runs them all before teardown.
  lo::net::RpcServer server([&flags] {
    lo::net::RpcServerOptions options;
    options.port = flags.port;
    return options;
  }());
  lo::runtime::ParallelNode node(db.get(), &types, node_options);

  server.Handle("lambda.invoke", [&node, &server](lo::net::RpcServer::Request request,
                                                  lo::net::RpcServer::Responder respond) {
    std::string_view oid, method, argument, token;
    if (!DecodeInvokePayload(request.payload, &oid, &method, &argument, &token)) {
      respond(lo::Status::Corruption("bad invoke payload"));
      return;
    }
    int64_t deadline_us = request.deadline_us;
    node.InvokeAsync(
        std::string(oid), std::string(method), std::string(argument),
        std::string(token), std::move(respond),
        [deadline_us, &server] {
          // Lane-level shed: the request waited behind a busy lane past
          // its deadline. Counts into the same counter as arrival sheds.
          bool expired = deadline_us != 0 &&
                         lo::net::EventLoop::NowUs() > deadline_us;
          if (expired) server.RecordShed();
          return expired;
        });
  });
  server.Handle("lambda.create", [&node, &server](lo::net::RpcServer::Request request,
                                                  lo::net::RpcServer::Responder respond) {
    std::string_view oid, type_name, token;
    if (!DecodeCreatePayload(request.payload, &oid, &type_name, &token)) {
      respond(lo::Status::Corruption("bad create payload"));
      return;
    }
    int64_t deadline_us = request.deadline_us;
    node.CreateObjectAsync(
        std::string(oid), std::string(type_name), std::string(token),
        std::move(respond),
        [deadline_us, &server] {
          bool expired = deadline_us != 0 &&
                         lo::net::EventLoop::NowUs() > deadline_us;
          if (expired) server.RecordShed();
          return expired;
        });
  });
  server.Handle("ping", [](lo::net::RpcServer::Request request,
                           lo::net::RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });
  server.Handle("admin.stats", [&node, &server](lo::net::RpcServer::Request,
                                                lo::net::RpcServer::Responder respond) {
    const auto& stats = server.stats();
    std::string out;
    out += "requests=" + std::to_string(stats.requests.load()) + "\n";
    out += "responses=" + std::to_string(stats.responses.load()) + "\n";
    out += "deadline_shed=" + std::to_string(stats.deadline_shed.load()) + "\n";
    out += "frame_rejects=" + std::to_string(server.frame_stats().rejects()) + "\n";
    out += "lanes=" + std::to_string(node.lanes()) + "\n";
    uint64_t executed = 0;
    for (size_t i = 0; i < node.lanes(); i++) executed += node.lane_executed(i);
    out += "invocations_executed=" + std::to_string(executed) + "\n";
    const auto& gc = node.committer().stats();
    out += "gc_commits=" + std::to_string(gc.commits) + "\n";
    out += "gc_groups=" + std::to_string(gc.groups) + "\n";
    respond(out);
  });
  server.Handle("admin.shutdown", [&shutdown_requested](
                                      lo::net::RpcServer::Request,
                                      lo::net::RpcServer::Responder respond) {
    respond(std::string("bye"));
    shutdown_requested.store(true, std::memory_order_release);
  });

  lo::Status started = server.Start();
  if (!started.ok()) {
    fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }
  printf("READY port=%u\n", server.port());
  fflush(stdout);

  // Wait for a signal or an admin.shutdown RPC. sigtimedwait (rather
  // than a signal handler) keeps shutdown on the main thread with no
  // async-signal-safety constraints.
  struct timespec poll_interval = {0, 50'000'000};  // 50ms
  while (!shutdown_requested.load(std::memory_order_acquire)) {
    int sig = sigtimedwait(&sigmask, nullptr, &poll_interval);
    if (sig == SIGINT || sig == SIGTERM) break;
  }

  // Teardown order matters: stop the server first (no new requests),
  // then drain the lanes (every outstanding Responder fires — into
  // closed connections, harmlessly), then let destructors run.
  server.Stop();
  node.Drain();
  return 0;
}
