// lambdastore-server: one LambdaStore node as a real process.
//
// Hosts clusterd::ServerNode — runtime::ParallelNode (execution lanes +
// WAL group commit) behind net::RpcServer, speaking the shared frame
// wire format. Standalone (no --coordinator) it is the server half of
// the LO_NET=real bench path; with --coordinator it registers with a
// lambdastore-coordinator process, serves only the microshards the
// directory assigns it (bouncing the rest with kWrongShard), reports
// per-window load, and takes part in live object migration
// (shard.migrate / shard.install).
//
// Invocations complete asynchronously: the RPC handler decodes the
// payload and enqueues on the object's lane; the lane thread re-checks
// ownership and the deadline, runs the method, waits for the group
// commit, and fires the Responder. The handler itself never blocks, so
// one loop thread feeds every lane.
//
// Flags:
//   --port=N         listen port; 0 = ephemeral (default; also LO_NET_PORT)
//   --db=PATH        persist under PATH with PosixEnv; default in-memory
//   --lanes=N        execution lanes (default 8)
//   --net-threads=N  transport reactor threads, one SO_REUSEPORT
//                    listener each (default from LO_NET_THREADS, else 1)
//   --net-backend=epoll|uring  poller backend (also LO_NET_BACKEND)
//   --net-flush=coalesce|immediate  response flush policy; immediate
//                    restores write-per-response (A13 ablation baseline)
//   --coordinator=IP:PORT  join the cluster at this coordinator
//   --advertise=HOST host peers/clients dial (default 127.0.0.1)
//   --report-interval-ms=N  load-report/heartbeat cadence (default 200)
//   --seed-users=N   pre-seed a ReTwis social graph with N users
//   --seed-posts=N   initial posts per user for the seeded graph
//   --block-cache-mb=N  SSTable block cache size (0 = off; default 8 MiB)
//   --seed=N         workload generator seed (default 42)
//   --gc-bytes=N     group-commit batch size cap
//   --gc-delay-us=N  group-commit batch delay
//   --memtable-shards=N  LSM memtable shards (power of two; default 1)
//   --subcompactions=N   parallel sub-compactions per compaction (default 1)
//   --compaction-rate-mb=N  compaction write cap, MB/s (0 = unlimited)
//   --wal-prealloc-mb=N  preallocate WAL files to N MiB and recycle them
//   --tenants=SPEC   per-tenant QoS contracts (also LO_TENANTS), e.g.
//                    "1:weight=4,rate=2000,burst=200,fuel=5000000,inflight=64;2:weight=1"
//   --tenant-window-ms=N  fuel-budget window length (also LO_TENANT_WINDOW_MS)
//
// See docs/tuning.md for how these interact with the workload.
//
// Prints "READY port=<p>" on stdout once listening (the harness and the
// loopback smoke test parse it), then serves until SIGINT/SIGTERM or an
// "admin.shutdown" RPC. Shutdown is a graceful drain: stop accepting,
// finish in-flight lanes, flush the memtable. Exit code 0 = clean
// drain; 1 = forced (a second signal arrived before the drain ended).
#include <signal.h>
#include <stdio.h>
#include <string.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "clusterd/server.h"
#include "common/log.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"
#include "storage/db.h"
#include "storage/env.h"
#include "tenant/tenant.h"

namespace {

struct Flags {
  uint16_t port = 0;
  std::string db_path;  // empty = MemEnv
  std::string coordinator;
  std::string advertise = "127.0.0.1";
  size_t lanes = 8;
  int64_t report_interval_ms = 200;
  uint64_t seed_users = 0;
  uint64_t seed_posts = 10;
  uint64_t seed = 42;
  int64_t gc_bytes = -1;
  int64_t gc_delay_us = -1;
  int64_t block_cache_mb = -1;  // -1 = DB default; 0 = off
  int64_t memtable_shards = -1;
  int64_t subcompactions = -1;
  int64_t compaction_rate_mb = -1;
  int64_t wal_prealloc_mb = -1;  // >0 also turns on WAL recycling
  std::string tenants;           // QoS spec; empty = tenancy off
  int64_t tenant_window_ms = 1000;
  int64_t net_threads = 0;       // 0 = LO_NET_THREADS, default 1
  std::string net_backend;       // empty = LO_NET_BACKEND, default epoll
  std::string net_flush;         // empty/"coalesce" | "immediate"
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  if (const char* env_port = std::getenv("LO_NET_PORT")) {
    flags.port = static_cast<uint16_t>(std::atoi(env_port));
  }
  if (const char* env_tenants = std::getenv("LO_TENANTS")) {
    flags.tenants = env_tenants;
  }
  if (const char* env_window = std::getenv("LO_TENANT_WINDOW_MS")) {
    flags.tenant_window_ms = std::atoll(env_window);
  }
  for (int i = 1; i < argc; i++) {
    std::string value;
    if (ParseFlag(argv[i], "port", &value)) {
      flags.port = static_cast<uint16_t>(std::stoi(value));
    } else if (ParseFlag(argv[i], "db", &value)) {
      flags.db_path = value;
    } else if (ParseFlag(argv[i], "coordinator", &value)) {
      flags.coordinator = value;
    } else if (ParseFlag(argv[i], "advertise", &value)) {
      flags.advertise = value;
    } else if (ParseFlag(argv[i], "lanes", &value)) {
      flags.lanes = static_cast<size_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "report-interval-ms", &value)) {
      flags.report_interval_ms = std::stoll(value);
    } else if (ParseFlag(argv[i], "seed-users", &value)) {
      flags.seed_users = std::stoull(value);
    } else if (ParseFlag(argv[i], "seed-posts", &value)) {
      flags.seed_posts = std::stoull(value);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "gc-bytes", &value)) {
      flags.gc_bytes = std::stoll(value);
    } else if (ParseFlag(argv[i], "gc-delay-us", &value)) {
      flags.gc_delay_us = std::stoll(value);
    } else if (ParseFlag(argv[i], "block-cache-mb", &value)) {
      flags.block_cache_mb = std::stoll(value);
    } else if (ParseFlag(argv[i], "memtable-shards", &value)) {
      flags.memtable_shards = std::stoll(value);
    } else if (ParseFlag(argv[i], "subcompactions", &value)) {
      flags.subcompactions = std::stoll(value);
    } else if (ParseFlag(argv[i], "compaction-rate-mb", &value)) {
      flags.compaction_rate_mb = std::stoll(value);
    } else if (ParseFlag(argv[i], "wal-prealloc-mb", &value)) {
      flags.wal_prealloc_mb = std::stoll(value);
    } else if (ParseFlag(argv[i], "tenants", &value)) {
      flags.tenants = value;
    } else if (ParseFlag(argv[i], "tenant-window-ms", &value)) {
      flags.tenant_window_ms = std::stoll(value);
    } else if (ParseFlag(argv[i], "net-threads", &value)) {
      flags.net_threads = std::stoll(value);
    } else if (ParseFlag(argv[i], "net-backend", &value)) {
      flags.net_backend = value;
    } else if (ParseFlag(argv[i], "net-flush", &value)) {
      flags.net_flush = value;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and only the main thread (via sigtimedwait below)
  // ever observes them.
  sigset_t sigmask;
  sigemptyset(&sigmask);
  sigaddset(&sigmask, SIGINT);
  sigaddset(&sigmask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigmask, nullptr);

  lo::storage::MemEnv mem_env;
  lo::storage::PosixEnv posix_env;
  lo::storage::Options db_options;
  db_options.env = flags.db_path.empty()
                       ? static_cast<lo::storage::Env*>(&mem_env)
                       : static_cast<lo::storage::Env*>(&posix_env);
  db_options.serialize_access = true;  // lanes + committer share the DB
  if (flags.block_cache_mb >= 0) {
    db_options.block_cache_bytes = static_cast<size_t>(flags.block_cache_mb)
                                   << 20;
  }
  if (flags.memtable_shards > 0) {
    db_options.memtable_shards = static_cast<int>(flags.memtable_shards);
  }
  if (flags.subcompactions > 0) {
    db_options.subcompactions = static_cast<int>(flags.subcompactions);
  }
  if (flags.compaction_rate_mb > 0) {
    db_options.compaction_rate_bytes_per_sec =
        static_cast<uint64_t>(flags.compaction_rate_mb) * 1024 * 1024;
  }
  if (flags.wal_prealloc_mb > 0) {
    db_options.wal_preallocate_bytes =
        static_cast<uint64_t>(flags.wal_prealloc_mb) << 20;
    db_options.wal_recycle = true;
  }
  std::string db_name = flags.db_path.empty() ? "/db" : flags.db_path;
  auto opened = lo::storage::DB::Open(db_options, db_name);
  if (!opened.ok()) {
    fprintf(stderr, "DB::Open(%s): %s\n", db_name.c_str(),
            opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<lo::storage::DB> db = std::move(*opened);

  lo::runtime::TypeRegistry types;
  LO_CHECK(lo::retwis::RegisterUserType(&types, /*use_vm=*/true).ok());

  if (flags.seed_users > 0) {
    lo::retwis::WorkloadConfig config;
    config.num_users = flags.seed_users;
    config.initial_posts_per_user = flags.seed_posts;
    config.seed = flags.seed;
    lo::retwis::Workload workload(config);
    lo::Status seeded = workload.SeedDb(db.get());
    if (!seeded.ok()) {
      fprintf(stderr, "SeedDb: %s\n", seeded.ToString().c_str());
      return 1;
    }
  }

  lo::clusterd::ServerNodeOptions options;
  options.port = flags.port;
  options.coordinator = flags.coordinator;
  options.advertise_host = flags.advertise;
  options.lanes = flags.lanes;
  options.report_interval_ms = flags.report_interval_ms;
  options.net_threads = static_cast<int>(flags.net_threads);
  if (!flags.net_backend.empty()) {
    options.net_backend = flags.net_backend == "uring"
                              ? lo::net::NetBackend::kUring
                              : lo::net::NetBackend::kEpoll;
  }
  if (flags.net_flush == "immediate") options.net_coalesce_flush = false;
  if (flags.gc_bytes > 0) {
    options.group_commit.max_batch_bytes = static_cast<size_t>(flags.gc_bytes);
  }
  if (flags.gc_delay_us >= 0) {
    options.group_commit.max_batch_delay_us = flags.gc_delay_us;
  }

  // Multi-tenant QoS: outlives the node (handlers hold the pointer).
  lo::tenant::TenantRegistry::Options tenant_options;
  tenant_options.window_ms = flags.tenant_window_ms;
  lo::tenant::TenantRegistry tenants(tenant_options);
  if (!flags.tenants.empty()) {
    auto parsed = lo::tenant::ParseTenantSpec(flags.tenants);
    if (!parsed.ok()) {
      fprintf(stderr, "--tenants: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    tenants.ConfigureAll(*parsed);
    options.tenants = &tenants;
  }

  lo::clusterd::ServerNode node(db.get(), &types, options);
  lo::Status started = node.Start();
  if (!started.ok()) {
    fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }
  printf("READY port=%u\n", node.port());
  fflush(stdout);

  // Wait for a signal or an admin.shutdown RPC. sigtimedwait (rather
  // than a signal handler) keeps shutdown on the main thread with no
  // async-signal-safety constraints.
  struct timespec poll_interval = {0, 50'000'000};  // 50ms
  while (!node.shutdown_requested()) {
    int sig = sigtimedwait(&sigmask, nullptr, &poll_interval);
    if (sig == SIGINT || sig == SIGTERM) break;
  }

  // Graceful drain on a helper thread so the main thread can keep
  // watching for a second signal: stop accepting, run every in-flight
  // lane to completion, flush the memtable. A second SIGINT/SIGTERM
  // before the drain finishes forces an immediate exit with code 1, so
  // process supervisors can tell a clean stop from a kill -9-adjacent
  // one.
  std::atomic<bool> drained{false};
  std::thread drain_thread([&node, &drained] {
    node.Shutdown();
    drained.store(true, std::memory_order_release);
  });
  struct timespec force_poll = {0, 20'000'000};  // 20ms
  while (!drained.load(std::memory_order_acquire)) {
    int sig = sigtimedwait(&sigmask, nullptr, &force_poll);
    if (sig == SIGINT || sig == SIGTERM) {
      fprintf(stderr, "forced shutdown before drain completed\n");
      _exit(1);
    }
  }
  drain_thread.join();
  return 0;
}
