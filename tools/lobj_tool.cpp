// lobj-tool — developer tooling for LambdaVM modules (the "function
// binaries" uploaded to LambdaStore):
//
//   lobj-tool asm  <in.lasm> <out.lobj>     assemble λasm -> module binary
//   lobj-tool dis  <in.lobj>                disassemble to stdout
//   lobj-tool validate <in.lobj>            decode + validate
//   lobj-tool run  <in.lobj> <func> [arg]   execute against an in-memory
//                                           KV host, print result + stats
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/disassembler.h"
#include "vm/interpreter.h"

using namespace lo;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return Status::OK();
}

/// Standalone host: in-memory KV, no cluster.
class LocalHost : public vm::HostApi {
 public:
  sim::Task<Result<std::string>> KvGet(std::string_view key) override {
    auto it = kv_.find(std::string(key));
    if (it == kv_.end()) co_return Status::NotFound("");
    co_return it->second;
  }
  sim::Task<Status> KvPut(std::string_view key, std::string_view value) override {
    kv_[std::string(key)] = std::string(value);
    co_return Status::OK();
  }
  sim::Task<Status> KvDelete(std::string_view key) override {
    kv_.erase(std::string(key));
    co_return Status::OK();
  }
  sim::Task<Result<std::string>> InvokeObject(std::string_view oid,
                                              std::string_view function,
                                              std::string_view) override {
    co_return Status::Unavailable("no cluster: cannot invoke " + std::string(oid) +
                                  "." + std::string(function));
  }
  uint64_t TimeMillis() override { return 0; }
  void DebugLog(std::string_view message) override {
    std::fprintf(stderr, "[vm log] %.*s\n", static_cast<int>(message.size()),
                 message.data());
  }

  const std::map<std::string, std::string>& kv() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: lobj-tool asm <in.lasm> <out.lobj>\n"
               "       lobj-tool dis <in.lobj>\n"
               "       lobj-tool validate <in.lobj>\n"
               "       lobj-tool run <in.lobj> <func> [arg]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];

  if (command == "asm") {
    if (argc != 4) return Usage();
    auto source = ReadFile(argv[2]);
    if (!source.ok()) return Fail(source.status());
    auto module = vm::Assemble(*source);
    if (!module.ok()) return Fail(module.status());
    Status written = WriteFile(argv[3], module->Serialize());
    if (!written.ok()) return Fail(written);
    std::printf("assembled %zu function(s), %zu data segment(s)\n",
                module->functions().size(), module->data().size());
    return 0;
  }

  auto bytes = ReadFile(argv[2]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto module = vm::Module::Deserialize(*bytes);
  if (!module.ok()) return Fail(module.status());

  if (command == "dis") {
    std::fputs(vm::Disassemble(*module).c_str(), stdout);
    return 0;
  }
  if (command == "validate") {
    std::printf("ok: %zu function(s), %llu bytes memory\n",
                module->functions().size(),
                static_cast<unsigned long long>(module->min_memory()));
    for (const auto& fn : module->functions()) {
      std::printf("  %s%s: %zu instruction(s)\n", fn.name.c_str(),
                  fn.exported ? " (exported)" : "", fn.code.size());
    }
    return 0;
  }
  if (command == "run") {
    if (argc < 4) return Usage();
    std::string argument = argc > 4 ? argv[4] : "";
    LocalHost host;
    vm::Instance instance(&*module, {});
    Result<std::string> out = Status::Unavailable("did not run");
    bool done = false;
    sim::Detach([](vm::Instance& inst, std::string fn, std::string arg,
                   LocalHost* host, Result<std::string>* out,
                   bool* done) -> sim::Task<void> {
      *out = co_await inst.Invoke(fn, std::move(arg), host);
      *done = true;
    }(instance, argv[3], std::move(argument), &host, &out, &done));
    if (!done) {
      std::fprintf(stderr, "error: function suspended on an unavailable host op\n");
      return 1;
    }
    if (!out.ok()) return Fail(out.status());
    std::printf("result (%zu bytes): ", out->size());
    for (char c : *out) {
      std::printf(static_cast<uint8_t>(c) >= 0x20 && static_cast<uint8_t>(c) < 0x7f
                      ? "%c" : "\\x%02x",
                  static_cast<uint8_t>(c));
    }
    std::printf("\nfuel used: %llu, instructions: %llu, host calls: %llu\n",
                static_cast<unsigned long long>(instance.metrics().fuel_used),
                static_cast<unsigned long long>(instance.metrics().instructions),
                static_cast<unsigned long long>(instance.metrics().host_calls));
    if (!host.kv().empty()) {
      std::printf("kv state after run:\n");
      auto print_escaped = [](const std::string& bytes) {
        for (char c : bytes) {
          std::printf(static_cast<uint8_t>(c) >= 0x20 && static_cast<uint8_t>(c) < 0x7f
                          ? "%c" : "\\x%02x",
                      static_cast<uint8_t>(c));
        }
      };
      for (const auto& [key, value] : host.kv()) {
        std::printf("  ");
        print_escaped(key);
        std::printf(" = ");
        print_escaped(value);
        std::printf("\n");
      }
    }
    return 0;
  }
  return Usage();
}
