// trace-report — critical-path latency breakdown from a trace dump.
//
//   trace-report <trace.json> [<trace.json>...]
//
// Reads Chrome-trace-event JSON produced by the obs exporter (e.g. the
// BENCH_*_trace.json files benchmarks write when LO_OBS_OUT is set),
// reconstructs the spans, groups them into traces and prints the
// per-phase self-time breakdown: dispatch, VM execution, WAL sync,
// replication, storage round-trips, network, other. Phase self times
// partition each root span's duration, so the phase medians sum to
// (approximately) the end-to-end median.
//
// Metrics snapshot dumps (BENCH_*_metrics.json, a top-level "metrics"
// array) are detected automatically; for those the tool prints the
// per-tenant QoS rollup instead — admitted/shed/fuel/queue-wait per
// tenant id (the tenant.* metrics use the node field as the tenant id).
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/export.h"

using namespace lo;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Per-shard request-count rollup: one root span per request, labeled
/// with the node/shard it ran on. The share column makes load skew (and
/// whether a migration actually moved it) visible at a glance.
void PrintShardRollup(const std::vector<obs::SpanRecord>& spans) {
  std::map<uint32_t, uint64_t> requests;
  std::map<uint32_t, int64_t> busy_us;
  uint64_t total = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_span_id != 0) continue;
    requests[span.node]++;
    busy_us[span.node] += span.duration_ns() / 1000;
    total++;
  }
  if (total == 0) return;
  std::printf("per-shard requests:\n");
  std::printf("  %-8s %10s %8s %12s\n", "shard", "requests", "share",
              "busy_ms");
  for (const auto& [node, count] : requests) {
    std::printf("  %-8u %10llu %7.1f%% %12.1f\n", node,
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(total),
                static_cast<double>(busy_us[node]) / 1000.0);
  }
}

/// Per-tenant QoS rollup from a metrics snapshot dump: the tenant.*
/// metrics are registered with the metric node carrying the tenant id
/// (src/tenant), so grouping by node reconstructs the per-tenant table.
int ReportTenantRollup(const std::string& path, const obs::JsonValue& doc) {
  const obs::JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || metrics->type != obs::JsonValue::Type::kArray) {
    std::fprintf(stderr, "trace-report: %s: no \"metrics\" array\n",
                 path.c_str());
    return 1;
  }
  struct Row {
    double admitted = 0, shed = 0, fuel = 0, queue_p50 = 0, queue_p99 = 0;
  };
  std::map<uint32_t, Row> rows;
  size_t samples = 0;
  for (const obs::JsonValue& entry : metrics->array) {
    const obs::JsonValue* name = entry.Find("name");
    const obs::JsonValue* node = entry.Find("node");
    const obs::JsonValue* value = entry.Find("value");
    if (name == nullptr || node == nullptr || value == nullptr) continue;
    samples++;
    if (name->string_value.rfind("tenant.", 0) != 0) continue;
    Row& row = rows[static_cast<uint32_t>(node->number)];
    if (name->string_value == "tenant.admitted") row.admitted = value->number;
    else if (name->string_value == "tenant.shed") row.shed = value->number;
    else if (name->string_value == "tenant.fuel_used") row.fuel = value->number;
    else if (name->string_value == "tenant.queue_us_p50")
      row.queue_p50 = value->number;
    else if (name->string_value == "tenant.queue_us_p99")
      row.queue_p99 = value->number;
  }
  std::printf("== %s (%zu metric samples) ==\n", path.c_str(), samples);
  if (rows.empty()) {
    std::printf("no tenant.* metrics (single-tenant run or QoS disabled)\n");
    return 0;
  }
  std::printf("per-tenant QoS:\n");
  std::printf("  %-8s %10s %10s %7s %14s %12s %12s\n", "tenant", "admitted",
              "shed", "shed%", "fuel_used", "queue_p50_us", "queue_p99_us");
  for (const auto& [tenant, row] : rows) {
    double offered = row.admitted + row.shed;
    std::printf("  %-8u %10.0f %10.0f %6.1f%% %14.0f %12.0f %12.0f\n", tenant,
                row.admitted, row.shed,
                offered > 0 ? 100.0 * row.shed / offered : 0.0, row.fuel,
                row.queue_p50, row.queue_p99);
  }
  return 0;
}

int Report(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "trace-report: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto doc = obs::ParseJson(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "trace-report: %s: invalid JSON: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  if (doc->Find("metrics") != nullptr) return ReportTenantRollup(path, *doc);
  auto spans = obs::SpansFromChromeTrace(*doc);
  if (!spans.ok()) {
    std::fprintf(stderr, "trace-report: %s: not a trace dump: %s\n",
                 path.c_str(), spans.status().ToString().c_str());
    return 1;
  }
  obs::TraceBreakdown breakdown = obs::ComputeBreakdown(*spans);
  std::printf("== %s (%zu spans) ==\n%s", path.c_str(), spans->size(),
              breakdown.Format().c_str());
  PrintShardRollup(*spans);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace-report <trace.json> [...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; i++) {
    if (i > 1) std::printf("\n");
    rc |= Report(argv[i]);
  }
  return rc;
}
