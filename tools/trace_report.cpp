// trace-report — critical-path latency breakdown from a trace dump.
//
//   trace-report <trace.json> [<trace.json>...]
//
// Reads Chrome-trace-event JSON produced by the obs exporter (e.g. the
// BENCH_*_trace.json files benchmarks write when LO_OBS_OUT is set),
// reconstructs the spans, groups them into traces and prints the
// per-phase self-time breakdown: dispatch, VM execution, WAL sync,
// replication, storage round-trips, network, other. Phase self times
// partition each root span's duration, so the phase medians sum to
// (approximately) the end-to-end median.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"

using namespace lo;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Report(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "trace-report: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto doc = obs::ParseJson(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "trace-report: %s: invalid JSON: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  auto spans = obs::SpansFromChromeTrace(*doc);
  if (!spans.ok()) {
    std::fprintf(stderr, "trace-report: %s: not a trace dump: %s\n",
                 path.c_str(), spans.status().ToString().c_str());
    return 1;
  }
  obs::TraceBreakdown breakdown = obs::ComputeBreakdown(*spans);
  std::printf("== %s (%zu spans) ==\n%s", path.c_str(), spans->size(),
              breakdown.Format().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace-report <trace.json> [...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; i++) {
    if (i > 1) std::printf("\n");
    rc |= Report(argv[i]);
  }
  return rc;
}
